#include "src/metrics/clusters.hpp"

#include <algorithm>

namespace sops::metrics {

using lattice::kDegree;
using system::Color;
using system::ParticleIndex;
using system::ParticleSystem;

namespace {

/// BFS over same-color neighbors from `start`, marking `visited`.
std::vector<ParticleIndex> flood_component(const ParticleSystem& sys, Color c,
                                           ParticleIndex start,
                                           std::vector<char>& visited) {
  std::vector<ParticleIndex> component{start};
  visited[static_cast<std::size_t>(start)] = 1;
  std::size_t head = 0;
  while (head < component.size()) {
    const ParticleIndex v = component[head++];
    for (int k = 0; k < kDegree; ++k) {
      const ParticleIndex u =
          sys.particle_at(lattice::neighbor(sys.position(v), k));
      if (u == system::kNoParticle) continue;
      if (visited[static_cast<std::size_t>(u)] || sys.color(u) != c) continue;
      visited[static_cast<std::size_t>(u)] = 1;
      component.push_back(u);
    }
  }
  return component;
}

}  // namespace

std::vector<std::size_t> monochromatic_component_sizes(
    const ParticleSystem& sys, Color c) {
  std::vector<char> visited(sys.size(), 0);
  std::vector<std::size_t> sizes;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto pi = static_cast<ParticleIndex>(i);
    if (visited[i] || sys.color(pi) != c) continue;
    sizes.push_back(flood_component(sys, c, pi, visited).size());
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

std::vector<ParticleIndex> largest_monochromatic_component(
    const ParticleSystem& sys, Color c) {
  std::vector<char> visited(sys.size(), 0);
  std::vector<ParticleIndex> best;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto pi = static_cast<ParticleIndex>(i);
    if (visited[i] || sys.color(pi) != c) continue;
    std::vector<ParticleIndex> component = flood_component(sys, c, pi, visited);
    if (component.size() > best.size()) best = std::move(component);
  }
  return best;
}

double largest_component_fraction(const ParticleSystem& sys, Color c) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (sys.color(static_cast<ParticleIndex>(i)) == c) ++total;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(largest_monochromatic_component(sys, c).size()) /
         static_cast<double>(total);
}

}  // namespace sops::metrics
