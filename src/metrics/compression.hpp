// α-compression (Section 2.2): a configuration of n particles is
// α-compressed when p(σ) ≤ α · p_min(n).
#pragma once

#include "src/sops/invariants.hpp"
#include "src/sops/particle_system.hpp"

namespace sops::metrics {

/// p(σ) / p_min(n). Uses the hole-free identity for p(σ); callers must
/// ensure the configuration is connected and hole-free (the chain
/// guarantees this after hole elimination).
[[nodiscard]] double perimeter_ratio(const system::ParticleSystem& sys);

[[nodiscard]] bool is_alpha_compressed(const system::ParticleSystem& sys,
                                       double alpha);

}  // namespace sops::metrics
