// Monochromatic cluster statistics: connected components of the
// same-color particle subgraphs, used by the separation detector and the
// experiment readouts.
#pragma once

#include <cstddef>
#include <vector>

#include "src/sops/particle_system.hpp"

namespace sops::metrics {

/// Sizes of all connected components of the color-c subgraph, descending.
[[nodiscard]] std::vector<std::size_t> monochromatic_component_sizes(
    const system::ParticleSystem& sys, system::Color c);

/// The particle indices of the largest color-c component (empty if no
/// particle has color c).
[[nodiscard]] std::vector<system::ParticleIndex>
largest_monochromatic_component(const system::ParticleSystem& sys,
                                system::Color c);

/// Fraction of color-c particles lying in the largest color-c component —
/// a simple scalar separation order parameter in [0, 1].
[[nodiscard]] double largest_component_fraction(
    const system::ParticleSystem& sys, system::Color c);

}  // namespace sops::metrics
