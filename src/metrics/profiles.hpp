// Spatial order parameters complementing Definition 3: compactness and
// color-correlation profiles, the standard physics-style readouts for
// phase identification.
#pragma once

#include <cstddef>
#include <vector>

#include "src/sops/particle_system.hpp"

namespace sops::metrics {

/// Radius of gyration in the Euclidean embedding: sqrt of the mean
/// squared distance to the centroid. A compactness gauge — ≈ c·√n for
/// compressed configurations, ≈ c·n for lines.
[[nodiscard]] double radius_of_gyration(const system::ParticleSystem& sys);

/// Pair color correlation at lattice distance r ∈ [1, max_r]:
/// out[r-1] = P(same color | two particles at hex distance exactly r),
/// or -1 when no pair realizes the distance. A separated system keeps
/// the correlation above the mixed baseline out to distances comparable
/// to the region diameter; an integrated one decays to ~0.5 within a
/// couple of steps.
[[nodiscard]] std::vector<double> color_correlation_profile(
    const system::ParticleSystem& sys, std::size_t max_r);

/// Color dipole moment: the Euclidean distance between the centroids of
/// the two color classes, normalized by the radius of gyration. Near 0
/// for integrated systems; Θ(1) for half-plane-style separation.
/// Requires exactly 2 colors present (throws otherwise).
[[nodiscard]] double color_dipole_moment(const system::ParticleSystem& sys);

}  // namespace sops::metrics
