#include "src/metrics/compression.hpp"

namespace sops::metrics {

double perimeter_ratio(const system::ParticleSystem& sys) {
  const std::int64_t pmin = system::p_min(sys.size());
  if (pmin == 0) return 1.0;
  return static_cast<double>(sys.perimeter_by_identity()) /
         static_cast<double>(pmin);
}

bool is_alpha_compressed(const system::ParticleSystem& sys, double alpha) {
  return static_cast<double>(sys.perimeter_by_identity()) <=
         alpha * static_cast<double>(system::p_min(sys.size()));
}

}  // namespace sops::metrics
