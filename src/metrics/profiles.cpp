#include "src/metrics/profiles.hpp"

#include <cmath>
#include <stdexcept>

namespace sops::metrics {

using system::ParticleIndex;
using system::ParticleSystem;

double radius_of_gyration(const ParticleSystem& sys) {
  double cx = 0.0, cy = 0.0;
  std::vector<std::pair<double, double>> points;
  points.reserve(sys.size());
  for (const auto& node : sys.positions()) {
    const auto [x, y] = lattice::embed(node);
    points.emplace_back(x, y);
    cx += x;
    cy += y;
  }
  cx /= static_cast<double>(sys.size());
  cy /= static_cast<double>(sys.size());
  double sum = 0.0;
  for (const auto& [x, y] : points) {
    sum += (x - cx) * (x - cx) + (y - cy) * (y - cy);
  }
  return std::sqrt(sum / static_cast<double>(sys.size()));
}

std::vector<double> color_correlation_profile(const ParticleSystem& sys,
                                              std::size_t max_r) {
  std::vector<std::size_t> pairs(max_r, 0);
  std::vector<std::size_t> same(max_r, 0);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto pi = static_cast<ParticleIndex>(i);
    for (std::size_t j = i + 1; j < sys.size(); ++j) {
      const auto pj = static_cast<ParticleIndex>(j);
      const std::int64_t r =
          lattice::distance(sys.position(pi), sys.position(pj));
      if (r < 1 || static_cast<std::size_t>(r) > max_r) continue;
      const auto idx = static_cast<std::size_t>(r - 1);
      ++pairs[idx];
      same[idx] += (sys.color(pi) == sys.color(pj));
    }
  }
  std::vector<double> out(max_r, -1.0);
  for (std::size_t r = 0; r < max_r; ++r) {
    if (pairs[r] > 0) {
      out[r] = static_cast<double>(same[r]) / static_cast<double>(pairs[r]);
    }
  }
  return out;
}

double color_dipole_moment(const ParticleSystem& sys) {
  const auto hist = sys.color_histogram();
  std::size_t present = 0;
  for (const std::size_t c : hist) present += (c > 0);
  if (present != 2) {
    throw std::invalid_argument(
        "color_dipole_moment: requires exactly two colors present");
  }
  double cx[2] = {0, 0}, cy[2] = {0, 0};
  std::size_t count[2] = {0, 0};
  // Map the two present colors onto slots 0/1 in order of appearance.
  int slot_of_color[system::kMaxColors];
  for (auto& s : slot_of_color) s = -1;
  int next_slot = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto pi = static_cast<ParticleIndex>(i);
    const auto c = sys.color(pi);
    if (slot_of_color[c] < 0) slot_of_color[c] = next_slot++;
    const int slot = slot_of_color[c];
    const auto [x, y] = lattice::embed(sys.position(pi));
    cx[slot] += x;
    cy[slot] += y;
    ++count[slot];
  }
  for (int s = 0; s < 2; ++s) {
    cx[s] /= static_cast<double>(count[s]);
    cy[s] /= static_cast<double>(count[s]);
  }
  const double separation = std::hypot(cx[0] - cx[1], cy[0] - cy[1]);
  const double gyration = radius_of_gyration(sys);
  return gyration > 0 ? separation / gyration : 0.0;
}

}  // namespace sops::metrics
