// (β, δ)-separation (Definition 3).
//
// A configuration is (β, δ)-separated when some particle subset R has
//   1. at most β√n boundary edges (edges with exactly one endpoint in R),
//   2. color-c1 density ≥ 1 − δ inside R, and
//   3. color-c1 density ≤ δ outside R.
//
// Definition 3 quantifies over *any* subset R, so deciding separation
// exactly would require searching an exponential space. The detector
// below constructs strong candidate regions and returns the best
// certificate found: it is sound (a returned certificate really
// witnesses (β_hat, δ_hat)-separation) but, like any heuristic for this
// definition, only approximately complete. Tests pin its behavior on
// hand-built separated and integrated configurations, and the exact
// module cross-checks it against brute-force subset search on tiny
// systems.
//
// Candidate construction, per color c:
//   (a) seed R with the largest connected component of color-c particles
//       (or with all color-c particles — both variants are scored);
//   (b) enclave fill: repeatedly absorb any particle with a strict
//       majority of its incident edges inside R — each absorption
//       strictly decreases the boundary, so this terminates;
//   (c) score the certificate (β_hat, δ_hat).
#pragma once

#include <cstdint>
#include <optional>

#include "src/sops/particle_system.hpp"

namespace sops::metrics {

/// A witness subset R for Definition 3 and its achieved quality.
struct SeparationCertificate {
  system::Color majority_color = 0;  ///< the color playing c1
  std::size_t region_size = 0;       ///< |R|
  std::int64_t boundary_edges = 0;   ///< edges with one endpoint in R
  double beta_hat = 0.0;             ///< boundary_edges / √n
  double density_inside = 0.0;       ///< c1-density within R
  double density_outside = 0.0;      ///< c1-density outside R
  /// max(1 − density_inside, density_outside): the smallest δ this
  /// certificate witnesses.
  double delta_hat = 1.0;

  /// True iff this certificate witnesses (β, δ)-separation.
  [[nodiscard]] bool satisfies(double beta, double delta) const noexcept {
    return beta_hat <= beta && delta_hat <= delta;
  }
};

/// Best certificate found over both seeding variants and all colors.
/// Requires a 2-or-more-color system with at least one particle of some
/// color; returns nullopt for homogeneous systems (separation is
/// undefined there). "Best" = smallest delta_hat among certificates with
/// beta_hat ≤ beta_budget, else smallest beta_hat.
[[nodiscard]] std::optional<SeparationCertificate> find_separation(
    const system::ParticleSystem& sys, double beta_budget);

/// Convenience: does any constructed certificate witness (β, δ)?
[[nodiscard]] bool is_separated(const system::ParticleSystem& sys, double beta,
                                double delta);

}  // namespace sops::metrics
