// Exhaustive evaluation of Definition 3 over ALL particle subsets R,
// feasible for tiny systems (n ≤ ~18). This is the ground truth against
// which the heuristic detector in separation.hpp is validated: the
// detector must be *sound* (its certificates are genuine), and its
// completeness gap can be measured exactly here.
#pragma once

#include <optional>

#include "src/metrics/separation.hpp"
#include "src/sops/particle_system.hpp"

namespace sops::metrics {

/// The best certificate over every subset R ⊆ particles and both color
/// roles: among subsets with beta_hat ≤ beta_budget, the one minimizing
/// delta_hat (ties broken by smaller beta_hat). Returns nullopt for
/// homogeneous systems. Throws std::invalid_argument for n > 20.
[[nodiscard]] std::optional<SeparationCertificate> best_certificate_brute(
    const system::ParticleSystem& sys, double beta_budget);

/// Exact (β, δ)-separation per Definition 3 (any subset R).
[[nodiscard]] bool is_separated_brute(const system::ParticleSystem& sys,
                                      double beta, double delta);

}  // namespace sops::metrics
