#include "src/metrics/brute_force.hpp"

#include <cmath>
#include <stdexcept>

namespace sops::metrics {

using lattice::kDegree;
using system::Color;
using system::ParticleIndex;
using system::ParticleSystem;

namespace {

struct EdgeList {
  // Particle-index pairs (a < b) for every edge of the configuration.
  std::vector<std::pair<int, int>> edges;
};

EdgeList build_edges(const ParticleSystem& sys) {
  EdgeList out;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto pi = static_cast<ParticleIndex>(i);
    for (int k = 0; k < kDegree; ++k) {
      const ParticleIndex j =
          sys.particle_at(lattice::neighbor(sys.position(pi), k));
      if (j != system::kNoParticle && j > pi) {
        out.edges.emplace_back(static_cast<int>(pi), static_cast<int>(j));
      }
    }
  }
  return out;
}

}  // namespace

std::optional<SeparationCertificate> best_certificate_brute(
    const ParticleSystem& sys, double beta_budget) {
  const std::size_t n = sys.size();
  if (n > 20) {
    throw std::invalid_argument("best_certificate_brute: system too large");
  }
  if (sys.num_colors() < 2) return std::nullopt;

  const EdgeList edge_list = build_edges(sys);
  const double sqrt_n = std::sqrt(static_cast<double>(n));

  // Per-color particle counts and membership masks.
  std::vector<std::uint32_t> color_mask(
      static_cast<std::size_t>(sys.num_colors()), 0);
  for (std::size_t i = 0; i < n; ++i) {
    color_mask[sys.color(static_cast<ParticleIndex>(i))] |=
        (1u << i);
  }

  std::optional<SeparationCertificate> best;
  const auto better = [&](const SeparationCertificate& a,
                          const SeparationCertificate& b) {
    const bool a_in = a.beta_hat <= beta_budget;
    const bool b_in = b.beta_hat <= beta_budget;
    if (a_in != b_in) return a_in;
    if (a.delta_hat != b.delta_hat) return a.delta_hat < b.delta_hat;
    return a.beta_hat < b.beta_hat;
  };

  for (std::uint32_t mask = 1; mask + 1 < (1u << n); ++mask) {
    // Boundary edges: one endpoint in R.
    int boundary = 0;
    for (const auto& [a, b] : edge_list.edges) {
      boundary += (((mask >> a) ^ (mask >> b)) & 1u) != 0;
    }
    const auto region_size =
        static_cast<std::size_t>(__builtin_popcount(mask));

    for (int ci = 0; ci < sys.num_colors(); ++ci) {
      const std::uint32_t cmask = color_mask[static_cast<std::size_t>(ci)];
      const auto c_total = static_cast<std::size_t>(__builtin_popcount(cmask));
      if (c_total == 0 || c_total == n) continue;
      const auto c_inside =
          static_cast<std::size_t>(__builtin_popcount(mask & cmask));

      SeparationCertificate cert;
      cert.majority_color = static_cast<Color>(ci);
      cert.region_size = region_size;
      cert.boundary_edges = boundary;
      cert.beta_hat = static_cast<double>(boundary) / sqrt_n;
      cert.density_inside = static_cast<double>(c_inside) /
                            static_cast<double>(region_size);
      cert.density_outside =
          static_cast<double>(c_total - c_inside) /
          static_cast<double>(n - region_size);
      cert.delta_hat =
          std::max(1.0 - cert.density_inside, cert.density_outside);
      if (!best || better(cert, *best)) best = cert;
    }
  }
  return best;
}

bool is_separated_brute(const ParticleSystem& sys, double beta, double delta) {
  const auto cert = best_certificate_brute(sys, beta);
  return cert.has_value() && cert->satisfies(beta, delta);
}

}  // namespace sops::metrics
