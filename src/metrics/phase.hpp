// The four-phase classification of Figure 3: compressed/expanded crossed
// with separated/integrated.
#pragma once

#include <string>

#include "src/sops/particle_system.hpp"

namespace sops::metrics {

enum class Phase {
  kCompressedSeparated,
  kCompressedIntegrated,
  kExpandedSeparated,
  kExpandedIntegrated,
};

[[nodiscard]] std::string phase_name(Phase p);
/// Two-letter code used in the Figure 3 grid printout: CS, CI, ES, EI.
[[nodiscard]] std::string phase_code(Phase p);

/// Classification thresholds. "Compressed" means p(σ) ≤ α·p_min(n);
/// "separated" means a (β, δ) certificate exists. Defaults are calibrated
/// against the visual phases of Figure 3 (see EXPERIMENTS.md).
struct PhaseThresholds {
  double alpha = 3.0;
  double beta = 6.0;
  double delta = 0.25;
};

[[nodiscard]] Phase classify(const system::ParticleSystem& sys,
                             const PhaseThresholds& thresholds = {});

/// Classification from recorded scalars alone, for reports that work
/// off (Task, series) without a live configuration (merged shard runs,
/// generic models): "compressed" means perimeter_ratio ≤ alpha;
/// "separated" means hetero_fraction ≤ delta (the certificate's edge
/// criterion; beta is unused — no geometry to certify against). For
/// alignment workloads the hetero slot carries the unaligned-edge
/// fraction, so "separated" reads as "aligned".
[[nodiscard]] Phase classify_scalar(double perimeter_ratio,
                                    double hetero_fraction,
                                    const PhaseThresholds& thresholds = {});

}  // namespace sops::metrics
