// The four-phase classification of Figure 3: compressed/expanded crossed
// with separated/integrated.
#pragma once

#include <string>

#include "src/sops/particle_system.hpp"

namespace sops::metrics {

enum class Phase {
  kCompressedSeparated,
  kCompressedIntegrated,
  kExpandedSeparated,
  kExpandedIntegrated,
};

[[nodiscard]] std::string phase_name(Phase p);
/// Two-letter code used in the Figure 3 grid printout: CS, CI, ES, EI.
[[nodiscard]] std::string phase_code(Phase p);

/// Classification thresholds. "Compressed" means p(σ) ≤ α·p_min(n);
/// "separated" means a (β, δ) certificate exists. Defaults are calibrated
/// against the visual phases of Figure 3 (see EXPERIMENTS.md).
struct PhaseThresholds {
  double alpha = 3.0;
  double beta = 6.0;
  double delta = 0.25;
};

[[nodiscard]] Phase classify(const system::ParticleSystem& sys,
                             const PhaseThresholds& thresholds = {});

}  // namespace sops::metrics
