#include "src/harness/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <tuple>

#include "src/core/replica_band.hpp"
#include "src/util/cli.hpp"

namespace sops::harness {

namespace {

/// Probes that `path` can be opened for append, so a bad output path
/// fails at the CLI instead of after hours of sampling. Append mode
/// keeps the probe from truncating an existing file.
void require_writable(const std::string& path, const char* what,
                      const util::Cli& cli, const char* program) {
  std::FILE* probe = std::fopen(path.c_str(), "a");
  if (probe == nullptr) {
    std::cerr << "cli: cannot open " << what << " '" << path
              << "' for writing\n"
              << cli.help_text(program);
    std::exit(kUsageError);
  }
  std::fclose(probe);
}

}  // namespace

Options parse_options(int argc, char** argv, bool with_shard,
                      const char* passthrough_prefix) {
  util::Cli cli;
  cli.add_flag("full", "run at paper scale");
  cli.add_option("seed", "base random seed", "1");
  cli.add_option("threads", "worker threads (0 = hardware concurrency)", "0");
  cli.add_option("telemetry", "append per-task JSONL records to this file",
                 "");
  cli.add_option("replica-band",
                 "advance up to N same-cell replicas per core in lock-step "
                 "(core::ReplicaBand; 1 = scalar; byte-identical output)",
                 "1");
  if (with_shard) {
    cli.add_option("shard", "run shard k of n ('k/n'); needs --shard-out", "");
    cli.add_option("task-range",
                   "run the half-open task range 'a:b'; needs --shard-out",
                   "");
    cli.add_option("shard-out", "write this shard's result file here", "");
    cli.add_option("merge",
                   "merge comma-separated shard result files and report", "");
    cli.add_option("merge-dir",
                   "merge every *.shard / *.sopsshard file in this directory "
                   "and report",
                   "");
    cli.add_option("submit",
                   "submit the sweep to the sweep server at this AF_UNIX "
                   "socket and report its results",
                   "");
    cli.add_option("checkpoint-dir",
                   "write per-task resume snapshots to this directory", "");
    cli.add_option("checkpoint-every",
                   "also snapshot chain-backed tasks mid-run every N steps "
                   "(0 = at completion only)",
                   "0");
    cli.add_flag("resume",
                 "adopt matching snapshots in --checkpoint-dir: skip "
                 "completed tasks, continue partial ones");
  }
  if (passthrough_prefix != nullptr) {
    cli.set_passthrough_prefix(passthrough_prefix);
  }
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << cli.help_text(argv[0]);
    std::exit(kUsageError);
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text(argv[0]);
    std::cout << "\nexit codes: 0 success; " << kUsageError
              << " usage error (bad flags or values, message + usage on "
                 "stderr); "
              << kDataError
              << " data error (refused merge, unusable snapshot, transport "
                 "failure)\n";
    std::exit(0);
  }
  Options opt;
  opt.full = cli.flag("full");
  opt.passthrough = cli.passthrough();
  try {
    opt.seed = cli.unsigned_integer("seed");
    const std::uint64_t threads = cli.unsigned_integer("threads");
    if (threads > 4096) {
      throw std::invalid_argument("cli: --threads out of range (max 4096)");
    }
    opt.threads = static_cast<unsigned>(threads);
    const std::uint64_t band = cli.unsigned_integer("replica-band");
    // The band engine tops out at kMaxWidth lanes (two interleaved
    // 8-lane SIMD groups); reject out-of-range widths at the CLI
    // instead of silently clamping hours into a sweep.
    if (band < 1 || band > core::ReplicaBand::kMaxWidth) {
      throw std::invalid_argument(
          "cli: --replica-band out of range (legal range [1,16]; 1 = "
          "scalar)");
    }
    opt.replica_band = static_cast<std::size_t>(band);

    if (with_shard) {
      if (!cli.str("shard").empty()) {
        opt.shard_set = true;
        std::tie(opt.shard_k, opt.shard_n) = cli.shard_of("shard");
      }
      if (!cli.str("task-range").empty()) {
        opt.range_set = true;
        std::tie(opt.range_begin, opt.range_end) =
            cli.index_range("task-range");
      }
      opt.shard_out = cli.str("shard-out");
      opt.merge_dir = cli.str("merge-dir");
      const std::string merge = cli.str("merge");
      for (std::size_t start = 0; !merge.empty();) {
        const auto comma = merge.find(',', start);
        const std::string item = merge.substr(
            start, comma == std::string::npos ? comma : comma - start);
        if (item.empty()) {
          throw std::invalid_argument("cli: empty path in --merge list");
        }
        opt.merge_inputs.push_back(item);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }

      if (opt.shard_set && opt.range_set) {
        throw std::invalid_argument(
            "cli: --shard and --task-range are mutually exclusive");
      }
      if ((opt.shard_set || opt.range_set) && opt.shard_out.empty()) {
        throw std::invalid_argument(
            "cli: --shard/--task-range require --shard-out (a sub-range "
            "report would not be comparable to the full job)");
      }
      if (!opt.merge_inputs.empty() && !opt.merge_dir.empty()) {
        throw std::invalid_argument(
            "cli: --merge and --merge-dir are mutually exclusive");
      }
      if ((!opt.merge_inputs.empty() || !opt.merge_dir.empty()) &&
          (opt.shard_set || opt.range_set || !opt.shard_out.empty())) {
        throw std::invalid_argument(
            "cli: --merge/--merge-dir cannot be combined with --shard/"
            "--task-range/--shard-out");
      }
      opt.submit = cli.str("submit");
      if (!opt.submit.empty() &&
          (opt.shard_set || opt.range_set || !opt.shard_out.empty() ||
           !opt.merge_inputs.empty() || !opt.merge_dir.empty())) {
        throw std::invalid_argument(
            "cli: --submit cannot be combined with --shard/--task-range/"
            "--shard-out/--merge/--merge-dir (the server runs the whole "
            "job)");
      }

      opt.checkpoint_dir = cli.str("checkpoint-dir");
      opt.checkpoint_every = cli.unsigned_integer("checkpoint-every");
      opt.resume = cli.flag("resume");
      if (opt.checkpoint_dir.empty() &&
          (opt.checkpoint_every != 0 || opt.resume)) {
        throw std::invalid_argument(
            "cli: --checkpoint-every/--resume require --checkpoint-dir");
      }
      if (!opt.checkpoint_dir.empty() &&
          (!opt.merge_inputs.empty() || !opt.merge_dir.empty() ||
           !opt.submit.empty())) {
        throw std::invalid_argument(
            "cli: --checkpoint-dir cannot be combined with --merge/"
            "--merge-dir/--submit (snapshots belong to local execution)");
      }
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << cli.help_text(argv[0]);
    std::exit(kUsageError);
  }
  opt.telemetry = cli.str("telemetry");
  if (!opt.telemetry.empty()) {
    // Fail fast at the CLI instead of letting engine::ProgressSink throw
    // out of main() mid-setup.
    require_writable(opt.telemetry, "telemetry file", cli, argv[0]);
  }
  if (!opt.shard_out.empty()) {
    // Same fail-fast rule for the shard result file: a worker must not
    // discover an unwritable path after hours of sampling.
    require_writable(opt.shard_out, "shard result file", cli, argv[0]);
  }
  if (!opt.checkpoint_dir.empty()) {
    // Create the snapshot directory up front and prove it writable, so
    // the first mid-task snapshot (possibly hours in) cannot be the
    // first thing to notice a typo'd or read-only path.
    std::error_code ec;
    std::filesystem::create_directories(opt.checkpoint_dir, ec);
    if (ec) {
      std::cerr << "cli: cannot create checkpoint directory '"
                << opt.checkpoint_dir << "': " << ec.message() << "\n"
                << cli.help_text(argv[0]);
      std::exit(kUsageError);
    }
    const std::string probe = opt.checkpoint_dir + "/.sops-probe";
    require_writable(probe, "checkpoint directory", cli, argv[0]);
    std::remove(probe.c_str());
  }
  return opt;
}

}  // namespace sops::harness
