#include "src/harness/harness.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/checkpoint/runner.hpp"
#include "src/model/builtin.hpp"
#include "src/service/client.hpp"

namespace sops::harness {

namespace {

void banner(const char* experiment, const char* paper_artifact,
            const char* claim) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", experiment, paper_artifact);
  std::printf("paper: %s\n", claim);
  std::printf("=============================================================\n");
}

}  // namespace

double aux_value(const engine::TaskResult& r, std::size_t i) {
  if (i >= r.aux.size()) {
    throw std::runtime_error(
        "shard: result for task " + std::to_string(r.task.index) +
        " lacks aux value " + std::to_string(i) +
        " (shard file from an older harness version?)");
  }
  return r.aux[i];
}

int run(const Spec& spec, int argc, char** argv) {
  // Every harness binary speaks every first-class model: --resume must
  // be able to restore whatever tag a snapshot carries, and --merge
  // whatever tag a shard file names.
  model::ensure_builtin_models();
  if (static_cast<bool>(spec.sweep) == static_cast<bool>(spec.single)) {
    throw std::logic_error("harness: spec '" + spec.name +
                           "' must set exactly one of sweep/single");
  }
  const bool with_shard = static_cast<bool>(spec.sweep) && spec.shardable;
  const Options opt =
      parse_options(argc, argv, with_shard, spec.passthrough_prefix);

  banner(spec.experiment, spec.paper_artifact, spec.claim);
  if (spec.single) return spec.single(opt);

  Sweep sweep = spec.sweep(opt);
  sweep.job.name = spec.name;
  if (sweep.chain) {
    sweep.job.model = sweep.chain->model;
    // --replica-band is an execution knob, not part of the job identity:
    // it never rides the wire, and results are byte-identical either way.
    sweep.chain->replica_band = opt.replica_band;
  }
  engine::TaskFn fn = sweep.fn;
  if (!fn) {
    if (!sweep.chain) {
      throw std::logic_error("harness: sweep of '" + spec.name +
                             "' must set fn or chain");
    }
    fn = engine::make_task_fn(*sweep.chain);
  }

  if (!opt.submit.empty()) {
    // Remote execution: the sweep server runs the identical engine +
    // aux + wire path, so reporting its results here is byte-identical
    // to the in-process run. Refusals and transport failures are
    // operator-facing data errors, same as a refused merge.
    try {
      const std::vector<engine::TaskResult> results =
          service::run_job(opt.submit, sweep.job);
      return sweep.report ? sweep.report(opt, results) : 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return kDataError;
    }
  }

  shard::Modes modes;
  modes.shard_set = opt.shard_set;
  modes.shard_k = opt.shard_k;
  modes.shard_n = opt.shard_n;
  modes.range_set = opt.range_set;
  modes.range_begin = opt.range_begin;
  modes.range_end = opt.range_end;
  modes.out = opt.shard_out;
  modes.merge_inputs = opt.merge_inputs;

  engine::ThreadPool pool(opt.threads);
  engine::ProgressSink sink(opt.telemetry);
  std::optional<std::vector<engine::TaskResult>> results;
  try {
    // A refused merge (incomplete tiling, foreign shard file, parse
    // failure, empty --merge-dir), like an unusable snapshot under
    // --resume, is an expected operator-facing data error: report it
    // and exit kDataError instead of std::terminate.
    if (!opt.merge_dir.empty()) {
      modes.merge_inputs = shard::list_shard_files(opt.merge_dir);
    }
    if (!opt.checkpoint_dir.empty()) {
      // Checkpointed execution slots in under the shard dispatch: the
      // slice a worker runs and the wire file it writes are unchanged,
      // only how the slice's tasks get satisfied differs (and a resumed
      // run's results are byte-identical, so the wire bytes are too).
      const checkpoint::Policy policy{opt.checkpoint_dir,
                                      opt.checkpoint_every, opt.resume};
      // Mid-task snapshots only when the chain protocol is what actually
      // runs; a sweep with its own fn stays opaque even if it also
      // carries a ChainJob.
      const engine::ChainJob* chain = sweep.fn ? nullptr : sweep.chain.get();
      results = shard::run_or_merge(
          sweep.job, modes,
          [&](std::span<const engine::Task> tasks) {
            return checkpoint::run_tasks(pool, tasks, sweep.job, chain, fn,
                                         policy, &sink, sweep.aux);
          });
    } else if (!sweep.fn && sweep.chain) {
      // Chain-protocol sweeps go through the ChainJob overload so the
      // replica_band knob can group same-cell replicas into lock-step
      // bands; byte-identical to the TaskFn path at every setting.
      results = shard::run_or_merge(sweep.job, modes, pool, *sweep.chain,
                                    &sink, sweep.aux);
    } else {
      results = shard::run_or_merge(sweep.job, modes, pool, fn, &sink,
                                    sweep.aux);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return kDataError;
  }
  if (!results) return 0;  // worker mode: shard file written
  return sweep.report ? sweep.report(opt, *results) : 0;
}

}  // namespace sops::harness
