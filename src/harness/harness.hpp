// Declarative harness framework: one spec, one entry point.
//
// A bench harness is a Spec — its identity (banner fields + wire job
// name) plus exactly one workload shape:
//
//   * a `sweep` factory, for grid-shaped workloads: builds a Sweep
//     (JobSpec task table, per-task body, aux packing, report renderer)
//     from the parsed Options. harness::run owns everything else —
//     option parsing, the thread pool and telemetry sink, full/worker/
//     merge dispatch through shard::run_or_merge, and report emission.
//     Sharding flags are exposed whenever `shardable` is true (the
//     default); set it false for sweeps whose execution prints (e.g. a
//     timeline render per checkpoint), which cannot be reproduced from a
//     wire file.
//   * a `single` body, for workloads that are not a task grid (closed-
//     form numerics, external benchmark loops): runs after the banner
//     with the parsed Options and owns its own output.
//
// The contract that makes the framework worth having: a Sweep's report
// reads only (Task, series, aux) off the results — exactly what the
// wire carries — so the default and --full reports are byte-identical
// at every --threads N and across any worker/merge split. See DESIGN.md
// §6.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "src/engine/ensemble.hpp"
#include "src/harness/options.hpp"
#include "src/shard/harness.hpp"

namespace sops::harness {

/// Reads a packed aux scalar off a result, with a loud error naming the
/// task if a (hand-edited or version-skewed) shard file lacks it.
[[nodiscard]] double aux_value(const engine::TaskResult& r, std::size_t i);

/// One grid-shaped workload, built from the parsed Options. Preamble
/// lines (scaling notes and anything else that must precede the sweep in
/// every mode) print from the factory itself.
struct Sweep {
  /// Job identity: grid, protocol, params, dense task table. `name` is
  /// filled in by harness::run from Spec::name.
  shard::JobSpec job;

  /// Per-task body. Leave empty to run `chain` via engine::make_task_fn.
  engine::TaskFn fn;

  /// Declarative chain protocol; used when `fn` is empty. Held by
  /// shared_ptr because make_task_fn captures the ChainJob by reference
  /// and the Sweep must keep it alive through the run.
  std::shared_ptr<engine::ChainJob> chain;

  /// Packs harness-side derived scalars into TaskResult::aux (worker
  /// side; travels on the wire).
  shard::AuxFn aux;

  /// Renders the report from the index-ordered results. Runs in full and
  /// merge modes, never in worker mode. Returns the process exit code.
  std::function<int(const Options&, std::span<const engine::TaskResult>)>
      report;
};

struct Spec {
  std::string name;             ///< wire job name; single token, no spaces
  const char* experiment;       ///< banner: experiment id ("E2", …)
  const char* paper_artifact;   ///< banner: figure/theorem reproduced
  const char* claim;            ///< banner: the paper's claim

  /// Exactly one of `sweep` / `single` must be set.
  std::function<Sweep(const Options&)> sweep;
  std::function<int(const Options&)> single;

  /// Expose --shard/--task-range/--shard-out/--merge/--merge-dir
  /// (sweeps only). False for sweeps whose execution itself prints.
  bool shardable = true;

  /// Forward arguments with this prefix verbatim to Options::passthrough
  /// instead of rejecting them (e.g. "--benchmark_").
  const char* passthrough_prefix = nullptr;
};

/// The whole harness: parse → banner → dispatch → report. Returns the
/// process exit code (0 on success and after a worker's shard file is
/// written; kDataError on refused merges and malformed shard files;
/// parse_options exits kUsageError on bad flags before any work).
[[nodiscard]] int run(const Spec& spec, int argc, char** argv);

}  // namespace sops::harness
