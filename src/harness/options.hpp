// Uniform CLI surface for every bench harness.
//
// Every harness accepts:
//   --full         paper-scale iteration counts (defaults are ~10x smaller
//                  so the whole suite runs in a few minutes)
//   --seed S       base RNG seed
//   --threads N    engine worker threads (0 = hardware concurrency);
//                  results are bit-identical for every N — see src/engine
//   --telemetry F  append per-task JSONL telemetry records to F
//   --replica-band N  advance up to N same-cell replicas in lock-step
//                  per core (core::ReplicaBand) for chain-protocol
//                  sweeps; legal range [1,16], 1 (default) = scalar;
//                  output is byte-identical at every width
//
// Grid-shaped harnesses additionally expose the multi-host sharding
// surface (parse_options(..., with_shard = true)):
//   --shard k/n      run shard k of n (contiguous task-index slice)
//   --task-range a:b run the explicit half-open task range [a, b)
//   --shard-out F    write this shard's wire-format result file to F
//   --merge F1,F2,…  skip the sweep; merge shard files and report
//   --merge-dir DIR  as --merge, globbing DIR/*.shard and *.sopsshard
//   --submit SOCKET  run the sweep on the sweep server listening at
//                    this AF_UNIX socket instead of in-process, then
//                    report locally (byte-identical; see src/service)
//   --checkpoint-dir DIR    write per-task snapshots to DIR
//   --checkpoint-every N    also snapshot chain-backed tasks mid-run
//                           every N steps (0 = at completion only)
//   --resume                adopt matching snapshots in DIR: skip
//                           completed tasks, continue partial ones; the
//                           resumed run's report is byte-identical to an
//                           uninterrupted one (see src/checkpoint)
// See src/shard and DESIGN.md for the wire format and the byte-identity
// contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sops::harness {

/// Exit-code contract shared by every harness and sops_shard_merge:
/// usage errors (bad flags, conflicting modes, unwritable output paths)
/// exit 2; data-validation failures (unreadable or malformed shard
/// files, inconsistent or incomplete shard sets) exit 1 — so scripts can
/// tell an operator typo from a corrupt artifact.
inline constexpr int kUsageError = 2;
inline constexpr int kDataError = 1;

struct Options {
  bool full = false;
  std::uint64_t seed = 1;
  unsigned threads = 0;    ///< engine pool size; 0 = hardware concurrency
  std::string telemetry;   ///< JSONL telemetry path; empty = disabled
  /// --replica-band N: lock-step band width for chain-protocol sweeps
  /// (engine::ChainJob::replica_band). Legal range [1, 16] at the CLI
  /// (core::ReplicaBand::kMaxWidth lanes); 1 = scalar. An execution
  /// knob only — output is byte-identical at every width.
  std::size_t replica_band = 1;

  // Sharding surface (populated only for with_shard harnesses).
  bool shard_set = false;          ///< --shard k/n given
  std::uint64_t shard_k = 0;
  std::uint64_t shard_n = 1;
  bool range_set = false;          ///< --task-range a:b given
  std::uint64_t range_begin = 0;
  std::uint64_t range_end = 0;
  std::string shard_out;           ///< worker result file; empty = disabled
  std::vector<std::string> merge_inputs;  ///< --merge file list
  std::string merge_dir;           ///< --merge-dir; empty = disabled
  std::string submit;              ///< --submit server socket; empty = local

  // Checkpoint/resume surface (see src/checkpoint).
  std::string checkpoint_dir;      ///< snapshot directory; empty = disabled
  std::uint64_t checkpoint_every = 0;  ///< mid-task snapshot period (steps)
  bool resume = false;             ///< adopt snapshots found in the directory

  /// Raw arguments matching the spec's passthrough prefix (e.g. the
  /// --benchmark_* namespace bench_kernels forwards to google-benchmark).
  std::vector<std::string> passthrough;

  /// Scales a default iteration budget up to paper scale under --full.
  [[nodiscard]] std::uint64_t scaled(std::uint64_t base,
                                     std::uint64_t full_scale = 10) const {
    return full ? base * full_scale : base;
  }
};

/// Parses the common flags; exits(0) on --help, exits(kUsageError) on
/// bad arguments or unwritable --telemetry/--shard-out paths. Pass
/// with_shard to expose the sharding surface; a non-null
/// passthrough_prefix collects matching raw arguments verbatim.
[[nodiscard]] Options parse_options(int argc, char** argv, bool with_shard,
                                    const char* passthrough_prefix = nullptr);

}  // namespace sops::harness
