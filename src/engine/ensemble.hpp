// Declarative ensemble execution: a parameter grid × replicas job spec
// fanned out over the thread pool, with results collected in task order.
//
// Determinism contract (the whole point of this module): a task's output
// depends only on its Task record — seed included — never on which
// worker ran it or when. Results land in a pre-sized vector slot indexed
// by Task::index, and aggregation walks that vector in index order, so
// the same job spec produces byte-identical output at --threads 1, 8, or
// 128. Wall-clock timings are reported only through the ProgressSink
// side channel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/markov_chain.hpp"
#include "src/core/runner.hpp"
#include "src/engine/progress.hpp"
#include "src/engine/thread_pool.hpp"
#include "src/model/model.hpp"
#include "src/util/stats.hpp"

namespace sops::engine {

/// One unit of ensemble work, fully determined before execution.
struct Task {
  std::size_t index = 0;         ///< dense ordinal; also the result slot
  std::size_t lambda_index = 0;  ///< position in GridSpec::lambdas
  std::size_t gamma_index = 0;   ///< position in GridSpec::gammas
  std::size_t replica = 0;       ///< replica ordinal at this grid cell
  double lambda = 0.0;
  double gamma = 0.0;
  std::uint64_t seed = 0;        ///< RNG seed this task must use
};

/// A λ×γ parameter grid with independent replicas per cell.
struct GridSpec {
  std::vector<double> lambdas{1.0};
  std::vector<double> gammas{1.0};
  std::size_t replicas = 1;
  std::uint64_t base_seed = 1;
  /// true: per-task seeds via seed_stream (replicas differ). false:
  /// every task runs from base_seed verbatim — the paper's "one shared
  /// start per cell" protocol (Figure 3), and what keeps the retrofitted
  /// harnesses byte-compatible with their serial predecessors.
  bool derive_seeds = true;
};

/// Enumerates the grid λ-major (λ, then γ, then replica), assigning
/// dense indices and seeds. The enumeration order fixes the result and
/// aggregation order for good.
[[nodiscard]] std::vector<Task> grid_tasks(const GridSpec& spec);

struct TaskResult {
  Task task;
  std::vector<core::Measurement> series;  ///< checkpoint/sample history
  std::uint64_t steps = 0;                ///< chain iterations executed
  double wall_seconds = 0.0;              ///< telemetry only; not output
  /// Harness-defined derived scalars (e.g. phase codes, certificate
  /// tallies) computed on the worker. Part of the scientific result:
  /// src/shard serializes aux verbatim so a merged run reports exactly
  /// what a single-host run would.
  std::vector<double> aux;
};

/// Arbitrary task body: receives the task, returns its measurement
/// series. Must touch no shared mutable state except slots keyed by
/// Task::index.
using TaskFn = std::function<std::vector<core::Measurement>(const Task&)>;

/// Thrown out of run_ensemble when its cancel token is set: tasks not
/// yet started raise this instead of running, and parallel_for's
/// lowest-index-wins rule propagates it to the caller. Tasks already
/// executing run to completion — cancellation is a between-task
/// lifecycle hook, never a mid-trajectory abort, so a cancelled job
/// leaves no partially-stepped chain anywhere.
class Cancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Fans `tasks` out over `pool`, returns results ordered by Task::index.
/// Exceptions propagate per ThreadPool::parallel_for (lowest task index
/// wins). `sink` (optional) receives one telemetry record per task.
/// `cancel` (optional) is polled before each task body: once it reads
/// true, every not-yet-started task throws Cancelled, which propagates
/// after in-flight tasks drain.
std::vector<TaskResult> run_ensemble(ThreadPool& pool,
                                     std::span<const Task> tasks,
                                     const TaskFn& fn,
                                     ProgressSink* sink = nullptr,
                                     const std::atomic<bool>* cancel = nullptr);

/// One task's measurement protocol: checkpoint mode when `checkpoints`
/// is nonempty (run to each absolute iteration, measuring at each),
/// equilibrium mode otherwise (burn in, then `samples` measurements
/// `interval` steps apart).
struct ChainProtocol {
  std::vector<std::uint64_t> checkpoints;
  std::uint64_t burn_in = 0;
  std::uint64_t interval = 0;
  std::size_t samples = 0;
};

/// Declarative trajectory job: which model family it runs, how to build
/// each task's trajectory, and which of the two measurement protocols
/// (src/model drivers) to drive it with.
struct ChainJob {
  /// Registry tag of the model family every task runs ("separation",
  /// "alignment", …). Rides the wire (JobSpec::model) and the snapshot
  /// header, so shards, resumes, and service submissions refuse to mix
  /// model families. Must agree with what make_model builds.
  std::string model = "separation";

  /// Builds the trajectory for one task (typically from t.lambda,
  /// t.gamma, t.seed — or via model::build_from_spec for registry-built
  /// jobs). Called on the worker; must not touch shared mutable state.
  std::function<std::unique_ptr<model::ChainModel>(const Task&)> make_model;

  /// Checkpoint mode (used when non-empty): run to each absolute
  /// iteration, recording a Measurement at each.
  std::vector<std::uint64_t> checkpoints;

  /// Equilibrium mode (used when checkpoints is empty): burn in, then
  /// record `samples` measurements `interval` steps apart.
  std::uint64_t burn_in = 0;
  std::uint64_t interval = 0;
  std::size_t samples = 0;

  /// Optional per-task protocol override for sweeps whose iteration
  /// budget is an axis of the sweep itself (bench_thm13 scales burn-in
  /// and spacing with n). When set, it replaces the four fixed fields
  /// above for every task; the sweep's identity must then ride in
  /// JobSpec::params, since the wire carries only the fixed fields.
  /// Must be a pure function of the Task (workers resolve it
  /// independently).
  std::function<ChainProtocol(const Task&)> protocol;

  /// Optional per-checkpoint/per-sample hook with the live model, for
  /// derived observables (separation certificates, renders, …) —
  /// downcast via model::separation_chain() etc. Runs on the worker:
  /// write only to slots keyed by Task::index.
  std::function<void(const Task&, const model::ChainModel&)> on_sample;

  /// Block size hint forwarded to ChainModel::set_pipeline_block (0 =
  /// model default). Tunes only refill/decode granularity —
  /// trajectories, and therefore reports, are byte-identical at every
  /// value.
  std::size_t pipeline_block = 0;

  /// Across-replica banding (core::ReplicaBand): when ≥ 2, replicas of
  /// the same grid cell are grouped into lock-step bands of up to this
  /// many lanes (clamped to ReplicaBand::kMaxWidth) and one band is one
  /// pool task. Ragged tails, non-bandable models (band_chain() ==
  /// nullptr), and lanes whose parameters disagree fall back to the
  /// scalar pipeline inside the same grouping. Purely an execution
  /// strategy: the band's byte-identity contract makes every series,
  /// aggregate, and wire byte identical to the 0/1 (scalar) setting.
  /// The checkpointed runner (src/checkpoint) ignores it — mid-task
  /// snapshot points are per-lane, so that path stays scalar.
  std::size_t replica_band = 0;
};

/// The protocol `job` prescribes for `task`: the per-task override when
/// set, the fixed fields otherwise. Exposed so the checkpointed runner
/// (src/checkpoint) drives exactly the protocol make_task_fn would.
[[nodiscard]] ChainProtocol resolve_protocol(const ChainJob& job,
                                             const Task& task);

/// The TaskFn a ChainJob describes: build the model, drive it through
/// the checkpoint or equilibrium protocol, fire on_sample. The returned
/// closure captures `job` by reference — keep the job alive while it
/// runs. Exposed so sharded harnesses can run a sub-range of tasks
/// through the identical protocol path.
[[nodiscard]] TaskFn make_task_fn(const ChainJob& job);

/// run_ensemble specialized to model-backed runs via src/model drivers.
std::vector<TaskResult> run_chain_ensemble(ThreadPool& pool,
                                           std::span<const Task> tasks,
                                           const ChainJob& job,
                                           ProgressSink* sink = nullptr);

/// Replica-aggregated final measurements at one grid cell.
struct CellAggregate {
  std::size_t lambda_index = 0;
  std::size_t gamma_index = 0;
  double lambda = 0.0;
  double gamma = 0.0;
  util::Accumulator perimeter_ratio;   ///< over each replica's final sample
  util::Accumulator hetero_fraction;   ///< over each replica's final sample
};

/// Groups results by grid cell (order: λ-major, matching grid_tasks) and
/// accumulates each replica's final Measurement. Accumulation order is
/// replica order, so aggregates are bit-identical for any thread count.
[[nodiscard]] std::vector<CellAggregate> aggregate_final(
    const GridSpec& spec, std::span<const TaskResult> results);

/// 95% normal-approximation confidence half-width of the mean.
[[nodiscard]] double ci95_halfwidth(const util::Accumulator& acc);

}  // namespace sops::engine
