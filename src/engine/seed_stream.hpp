// Deterministic per-task seed derivation.
//
// An ensemble's results must be bit-identical no matter how many workers
// run it or in what order the scheduler interleaves tasks. The only way
// to guarantee that is to fix every task's randomness *before* execution
// starts: each task's seed is a pure function of (base_seed, task_index),
// derived by walking the splitmix64 sequence of the base seed out to the
// task's index and applying the splitmix64 finalizer. Random access, no
// shared state, and statistically independent streams for neighboring
// indices (the same construction the xoshiro authors recommend for
// seeding parallel generators).
#pragma once

#include <cstdint>

namespace sops::engine {

/// The seed for task `task_index` of an ensemble keyed by `base_seed`.
/// Pure and O(1): task_seed(b, i) never depends on calls for other
/// indices.
[[nodiscard]] std::uint64_t task_seed(std::uint64_t base_seed,
                                      std::uint64_t task_index) noexcept;

/// Random-access view of the seed sequence of one base seed.
class SeedStream {
 public:
  explicit constexpr SeedStream(std::uint64_t base_seed) noexcept
      : base_(base_seed) {}

  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t at(std::uint64_t index) const noexcept;

 private:
  std::uint64_t base_;
};

}  // namespace sops::engine
