#include "src/engine/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace sops::engine {

namespace {

// Index of the worker executing the current thread, or npos on external
// threads. Lets submit() route nested submissions to the caller's own
// deque instead of round-robining them.
constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);
thread_local std::size_t tls_worker_index = kNotAWorker;

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target = tls_worker_index;
  if (target == kNotAWorker) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    target = next_worker_++ % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  {
    // Taking state_mutex_ after the push orders the enqueue before any
    // sleeping worker's re-check of the queues, so no wakeup is lost.
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++pending_;
  }
  work_ready_.notify_one();
}

bool ThreadPool::any_queued() {
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mutex);
    if (!w->queue.empty()) return true;
  }
  return false;
}

std::function<void()> ThreadPool::take_task(std::size_t self) {
  // Own deque first, newest task first (LIFO keeps caches warm) …
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.queue.empty()) {
      auto task = std::move(w.queue.back());
      w.queue.pop_back();
      return task;
    }
  }
  // … then steal the oldest task from the next busy worker (FIFO gives
  // the victim its own recent work back).
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& w = *workers_[(self + k) % workers_.size()];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.queue.empty()) {
      auto task = std::move(w.queue.front());
      w.queue.pop_front();
      return task;
    }
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker_index = self;
  for (;;) {
    std::function<void()> task = take_task(self);
    if (task) {
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      std::unique_lock<std::mutex> lock(state_mutex_);
      if (--pending_ == 0) {
        lock.unlock();
        all_done_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    work_ready_.wait(lock, [this] { return stop_ || any_queued(); });
    if (stop_ && !any_queued()) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
  };
  auto join = std::make_shared<Join>();
  join->remaining = count;

  for (std::size_t i = 0; i < count; ++i) {
    submit([join, &fn, i] {
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(join->mutex);
      if (err) join->errors.emplace_back(i, err);
      if (--join->remaining == 0) join->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(join->mutex);
  join->done.wait(lock, [&] { return join->remaining == 0; });
  if (!join->errors.empty()) {
    // Deterministic propagation: the failure with the lowest index wins,
    // no matter which worker hit it first.
    const auto lowest = std::min_element(
        join->errors.begin(), join->errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(lowest->second);
  }
}

}  // namespace sops::engine
