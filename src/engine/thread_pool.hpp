// Fixed-size worker pool with per-worker deques and work stealing.
//
// Each worker owns a deque: it pops its own tasks LIFO (cache-warm) and
// steals FIFO from the other workers when its deque runs dry, so a long
// task on one worker never strands queued work behind it. Submission
// round-robins across the deques; tasks submitted from inside a worker
// go to that worker's own deque.
//
// Determinism contract: the pool schedules *when* tasks run, never what
// they compute. Ensemble results are reproducible because every task
// carries its own seed (see seed_stream.hpp) and writes only to its own
// output slot — see ensemble.cpp for the pattern.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sops::engine {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned workers = 0);

  /// Drains all outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task. If the task throws, the first exception is held
  /// and rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if any).
  void wait_idle();

  /// Runs fn(0) … fn(count−1) across the pool and blocks until all are
  /// done. If any invocations throw, rethrows the one with the lowest
  /// index (a deterministic choice regardless of scheduling). Must not
  /// be called from inside a pool task.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] std::function<void()> take_task(std::size_t self);
  [[nodiscard]] bool any_queued();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // state_mutex_ guards pending_/stop_/first_error_ and orders the
  // sleep/wake handshake; worker queue mutexes are strict leaf locks.
  std::mutex state_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;
  std::size_t next_worker_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace sops::engine
