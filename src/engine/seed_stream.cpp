#include "src/engine/seed_stream.hpp"

#include "src/util/rng.hpp"

namespace sops::engine {

namespace {
// splitmix64's golden-ratio state increment (also the first step of
// util::mix64, which is why the composition below is exactly the
// splitmix64 output sequence).
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
}  // namespace

std::uint64_t task_seed(std::uint64_t base_seed,
                        std::uint64_t task_index) noexcept {
  // Output `task_index` of the splitmix64 stream started at
  // mix64(base_seed): the state at position i is start + i·golden, and
  // mix64 applies the final +golden step plus the finalizer. Hashing the
  // base first keeps small consecutive user seeds (1, 2, 3, …) from
  // producing overlapping streams.
  return util::mix64(util::mix64(base_seed) + kGolden * task_index);
}

std::uint64_t SeedStream::at(std::uint64_t index) const noexcept {
  return task_seed(base_, index);
}

}  // namespace sops::engine
