// Thread-safe per-task telemetry for ensemble runs.
//
// Workers report one record per finished task; the sink appends one JSON
// object per line (JSONL) so downstream trajectory analysis can stream
// the file without a parser state machine. Telemetry is timing-only
// side-channel output: scientific results never flow through the sink,
// so wall-clock jitter cannot perturb the bit-identical aggregates the
// engine guarantees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace sops::engine {

class ProgressSink {
 public:
  struct Record {
    std::size_t task_index = 0;
    double lambda = 0.0;
    double gamma = 0.0;
    std::size_t replica = 0;
    std::uint64_t seed = 0;
    std::uint64_t steps = 0;        ///< chain iterations the task executed
    double wall_seconds = 0.0;
    /// Owning job, for multi-job streams (the sweep server tags every
    /// record with the server-assigned job id). Empty for batch runs;
    /// emitted as a "job" JSON field only when nonempty, so single-job
    /// telemetry files are byte-compatible with pre-service output.
    std::string job;
  };

  /// A disabled sink: record() only counts completions.
  ProgressSink() = default;

  /// Appends JSONL to `jsonl_path`; an empty path disables file output.
  /// Throws std::runtime_error if the file cannot be opened.
  explicit ProgressSink(const std::string& jsonl_path);

  virtual ~ProgressSink();
  ProgressSink(const ProgressSink&) = delete;
  ProgressSink& operator=(const ProgressSink&) = delete;

  /// Thread-safe: each record becomes one complete output line. Virtual
  /// so job-scoped adapters (src/service) can stamp records with their
  /// job id and fan into a shared stream — the engine only ever talks to
  /// the ProgressSink abstraction.
  virtual void record(const Record& r);

  [[nodiscard]] std::size_t completed() const;

 private:
  mutable std::mutex mutex_;
  std::FILE* out_ = nullptr;
  std::size_t completed_ = 0;
};

}  // namespace sops::engine
