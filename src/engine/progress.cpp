#include "src/engine/progress.hpp"

#include <stdexcept>

namespace sops::engine {

ProgressSink::ProgressSink(const std::string& jsonl_path) {
  if (jsonl_path.empty()) return;
  out_ = std::fopen(jsonl_path.c_str(), "a");
  if (!out_) {
    throw std::runtime_error("ProgressSink: cannot open telemetry file '" +
                             jsonl_path + "'");
  }
}

ProgressSink::~ProgressSink() {
  if (out_) std::fclose(out_);
}

void ProgressSink::record(const Record& r) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  if (!out_) return;
  const double steps_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(r.steps) / r.wall_seconds
                           : 0.0;
  // The job tag leads the line so a multi-job stream greps by prefix;
  // it is omitted entirely for batch runs to keep their telemetry
  // byte-compatible with pre-service output.
  if (r.job.empty()) {
    std::fprintf(out_, "{");
  } else {
    std::fprintf(out_, "{\"job\":\"%s\",", r.job.c_str());
  }
  std::fprintf(out_,
               "\"task\":%zu,\"lambda\":%.17g,\"gamma\":%.17g,"
               "\"replica\":%zu,\"seed\":%llu,\"steps\":%llu,"
               "\"wall_seconds\":%.6f,\"steps_per_sec\":%.1f}\n",
               r.task_index, r.lambda, r.gamma, r.replica,
               static_cast<unsigned long long>(r.seed),
               static_cast<unsigned long long>(r.steps), r.wall_seconds,
               steps_per_sec);
  std::fflush(out_);
}

std::size_t ProgressSink::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

}  // namespace sops::engine
