#include "src/engine/ensemble.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/core/replica_band.hpp"
#include "src/engine/seed_stream.hpp"

namespace sops::engine {

std::vector<Task> grid_tasks(const GridSpec& spec) {
  if (spec.lambdas.empty() || spec.gammas.empty() || spec.replicas == 0) {
    throw std::invalid_argument(
        "grid_tasks: lambdas, gammas, and replicas must be nonempty");
  }
  const SeedStream seeds(spec.base_seed);
  std::vector<Task> tasks;
  tasks.reserve(spec.lambdas.size() * spec.gammas.size() * spec.replicas);
  for (std::size_t li = 0; li < spec.lambdas.size(); ++li) {
    for (std::size_t gi = 0; gi < spec.gammas.size(); ++gi) {
      for (std::size_t r = 0; r < spec.replicas; ++r) {
        Task t;
        t.index = tasks.size();
        t.lambda_index = li;
        t.gamma_index = gi;
        t.replica = r;
        t.lambda = spec.lambdas[li];
        t.gamma = spec.gammas[gi];
        t.seed = spec.derive_seeds ? seeds.at(t.index) : spec.base_seed;
        tasks.push_back(t);
      }
    }
  }
  return tasks;
}

std::vector<TaskResult> run_ensemble(ThreadPool& pool,
                                     std::span<const Task> tasks,
                                     const TaskFn& fn, ProgressSink* sink,
                                     const std::atomic<bool>* cancel) {
  std::vector<TaskResult> results(tasks.size());
  pool.parallel_for(tasks.size(), [&](std::size_t i) {
    const Task& task = tasks[i];
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw Cancelled("ensemble: cancelled before task " +
                      std::to_string(tasks[i].index));
    }
    const auto start = std::chrono::steady_clock::now();
    std::vector<core::Measurement> series = fn(task);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    TaskResult& slot = results[i];
    slot.task = task;
    slot.steps = series.empty() ? 0 : series.back().iteration;
    slot.series = std::move(series);
    slot.wall_seconds = elapsed.count();
    if (sink) {
      sink->record({task.index, task.lambda, task.gamma, task.replica,
                    task.seed, slot.steps, slot.wall_seconds});
    }
  });
  return results;
}

ChainProtocol resolve_protocol(const ChainJob& job, const Task& task) {
  if (job.protocol) return job.protocol(task);
  return {job.checkpoints, job.burn_in, job.interval, job.samples};
}

namespace {

// The per-task protocol walk make_task_fn wraps, on an already-built
// model — shared with the banded executor's scalar fallback so both
// paths drive the exact same sequence of run/measure/on_sample calls.
std::vector<core::Measurement> drive_protocol(model::ChainModel& m,
                                              const ChainJob& job,
                                              const Task& task) {
  const ChainProtocol proto = resolve_protocol(job, task);
  std::vector<core::Measurement> series;
  if (!proto.checkpoints.empty()) {
    std::function<void(const model::ChainModel&, std::uint64_t)> cb;
    if (job.on_sample) {
      cb = [&job, &task](const model::ChainModel& c, std::uint64_t) {
        job.on_sample(task, c);
      };
    }
    series = model::run_with_checkpoints(m, proto.checkpoints, cb);
  } else {
    std::function<void(const model::ChainModel&)> cb;
    if (job.on_sample) {
      cb = [&job, &task](const model::ChainModel& c) {
        job.on_sample(task, c);
      };
    }
    series = model::sample_equilibrium(m, proto.burn_in, proto.interval,
                                       proto.samples, cb);
  }
  return series;
}

// One lane of a band: its model, chain, measurement schedule as
// absolute (iteration, record?) points, and the series so far.
struct Lane {
  std::unique_ptr<model::ChainModel> model;
  core::SeparationChain* chain = nullptr;
  std::vector<std::pair<std::uint64_t, bool>> points;
  std::size_t next = 0;
  std::vector<core::Measurement> series;
};

// Lowers a protocol to the lane schedule: checkpoint targets verbatim,
// equilibrium targets at burn_in + k·interval. samples == 0 degenerates
// to an unrecorded advance to burn_in — exactly sample_equilibrium.
std::vector<std::pair<std::uint64_t, bool>> schedule_points(
    const ChainProtocol& proto) {
  std::vector<std::pair<std::uint64_t, bool>> pts;
  if (!proto.checkpoints.empty()) {
    for (const std::uint64_t cp : proto.checkpoints) {
      pts.emplace_back(cp, true);
    }
  } else if (proto.samples == 0) {
    pts.emplace_back(proto.burn_in, false);
  } else {
    for (std::size_t s = 0; s < proto.samples; ++s) {
      pts.emplace_back(proto.burn_in + s * proto.interval, true);
    }
  }
  return pts;
}

// Lock-step walk of one band: every pass gives each lane the quota to
// its next measurement point (0 once finished), the band advances all
// lanes — ragged quotas are its problem, not ours — and lanes that
// arrived measure and move their cursor. Per lane this interleaves
// run/measure exactly as drive_protocol would, and the band's
// byte-identity contract makes the trajectory between those points
// identical too, so the recorded series cannot differ from scalar's.
void run_band_lockstep(std::span<Lane> lanes, const ChainJob& job,
                       std::span<const Task> tasks) {
  std::vector<core::SeparationChain*> chains;
  chains.reserve(lanes.size());
  for (Lane& lane : lanes) chains.push_back(lane.chain);
  core::ReplicaBand band(chains,
                         job.pipeline_block == 0
                             ? core::ReplicaBand::kDefaultBlockSize
                             : job.pipeline_block);
  std::vector<std::uint64_t> quotas(lanes.size(), 0);
  while (true) {
    bool any = false;
    for (std::size_t r = 0; r < lanes.size(); ++r) {
      Lane& lane = lanes[r];
      // Record every point already reached (repeated checkpoints at one
      // iteration record repeatedly, as run_with_checkpoints does).
      while (lane.next < lane.points.size() &&
             lane.points[lane.next].first == lane.model->steps()) {
        if (lane.points[lane.next].second) {
          lane.series.push_back(lane.model->measure());
          if (job.on_sample) job.on_sample(tasks[r], *lane.model);
        }
        ++lane.next;
      }
      if (lane.next == lane.points.size()) {
        quotas[r] = 0;
        continue;
      }
      const std::uint64_t target = lane.points[lane.next].first;
      if (target < lane.model->steps()) {
        throw std::invalid_argument(
            "run_with_checkpoints: checkpoints must be nondecreasing");
      }
      quotas[r] = target - lane.model->steps();
      any = true;
    }
    if (!any) break;
    band.run(std::span<const std::uint64_t>(quotas.data(), quotas.size()));
  }
}

std::vector<TaskResult> run_banded_ensemble(ThreadPool& pool,
                                            std::span<const Task> tasks,
                                            const ChainJob& job,
                                            ProgressSink* sink) {
  const std::size_t band_max =
      std::min(job.replica_band, core::ReplicaBand::kMaxWidth);
  // Contiguous runs of tasks at the same grid cell, chopped to the band
  // width. grid_tasks enumerates replica-innermost, so a cell's
  // replicas are adjacent; any other order still groups correctly, just
  // into smaller bands.
  struct Group {
    std::size_t begin = 0, count = 0;
  };
  std::vector<Group> groups;
  std::size_t at = 0;
  while (at < tasks.size()) {
    std::size_t end = at + 1;
    while (end < tasks.size() && end - at < band_max &&
           tasks[end].lambda_index == tasks[at].lambda_index &&
           tasks[end].gamma_index == tasks[at].gamma_index) {
      ++end;
    }
    groups.push_back({at, end - at});
    at = end;
  }

  std::vector<TaskResult> results(tasks.size());
  pool.parallel_for(groups.size(), [&](std::size_t g) {
    const Group& group = groups[g];
    const std::span<const Task> gtasks =
        tasks.subspan(group.begin, group.count);
    const auto start = std::chrono::steady_clock::now();

    std::vector<Lane> lanes(group.count);
    for (std::size_t r = 0; r < group.count; ++r) {
      lanes[r].model = job.make_model(gtasks[r]);
      lanes[r].model->set_pipeline_block(job.pipeline_block);
      lanes[r].chain = lanes[r].model->band_chain();
      lanes[r].points = schedule_points(resolve_protocol(job, gtasks[r]));
    }
    // Bandable only when every lane exposes a chain and they agree on
    // what ReplicaBand requires; single-lane groups (ragged tails, 1×1
    // cells) just run scalar.
    bool bandable = group.count >= 2;
    for (std::size_t r = 0; bandable && r < group.count; ++r) {
      const core::SeparationChain* head = lanes[0].chain;
      const core::SeparationChain* c = lanes[r].chain;
      bandable = c != nullptr && head != nullptr &&
                 c->system().size() == head->system().size() &&
                 c->params().lambda == head->params().lambda &&
                 c->params().gamma == head->params().gamma &&
                 c->params().swaps_enabled == head->params().swaps_enabled;
    }
    if (bandable) {
      run_band_lockstep(lanes, job, gtasks);
    } else {
      for (std::size_t r = 0; r < group.count; ++r) {
        lanes[r].series = drive_protocol(*lanes[r].model, job, gtasks[r]);
      }
    }

    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    for (std::size_t r = 0; r < group.count; ++r) {
      TaskResult& slot = results[group.begin + r];
      slot.task = gtasks[r];
      slot.steps =
          lanes[r].series.empty() ? 0 : lanes[r].series.back().iteration;
      slot.series = std::move(lanes[r].series);
      // The whole band's wall time, attributed to each lane: lock-step
      // lanes have no meaningful per-lane clock. Telemetry only.
      slot.wall_seconds = elapsed.count();
      if (sink) {
        sink->record({slot.task.index, slot.task.lambda, slot.task.gamma,
                      slot.task.replica, slot.task.seed, slot.steps,
                      slot.wall_seconds});
      }
    }
  });
  return results;
}

}  // namespace

TaskFn make_task_fn(const ChainJob& job) {
  if (!job.make_model) {
    throw std::invalid_argument("make_task_fn: ChainJob::make_model is required");
  }
  return [&job](const Task& task) {
    std::unique_ptr<model::ChainModel> m = job.make_model(task);
    m->set_pipeline_block(job.pipeline_block);
    return drive_protocol(*m, job, task);
  };
}

std::vector<TaskResult> run_chain_ensemble(ThreadPool& pool,
                                           std::span<const Task> tasks,
                                           const ChainJob& job,
                                           ProgressSink* sink) {
  if (job.replica_band >= 2) {
    if (!job.make_model) {
      throw std::invalid_argument(
          "make_task_fn: ChainJob::make_model is required");
    }
    return run_banded_ensemble(pool, tasks, job, sink);
  }
  return run_ensemble(pool, tasks, make_task_fn(job), sink);
}

std::vector<CellAggregate> aggregate_final(
    const GridSpec& spec, std::span<const TaskResult> results) {
  const std::size_t cells = spec.lambdas.size() * spec.gammas.size();
  std::vector<CellAggregate> out(cells);
  for (std::size_t li = 0; li < spec.lambdas.size(); ++li) {
    for (std::size_t gi = 0; gi < spec.gammas.size(); ++gi) {
      CellAggregate& cell = out[li * spec.gammas.size() + gi];
      cell.lambda_index = li;
      cell.gamma_index = gi;
      cell.lambda = spec.lambdas[li];
      cell.gamma = spec.gammas[gi];
    }
  }
  // Results arrive ordered by Task::index (replica innermost), so this
  // single pass accumulates every cell in replica order — the fixed
  // order that makes the floating-point sums reproducible.
  for (const TaskResult& r : results) {
    if (r.series.empty()) continue;
    const std::size_t cell_index =
        r.task.lambda_index * spec.gammas.size() + r.task.gamma_index;
    if (cell_index >= out.size()) {
      throw std::out_of_range("aggregate_final: task outside the grid");
    }
    const core::Measurement& final = r.series.back();
    out[cell_index].perimeter_ratio.add(final.perimeter_ratio);
    out[cell_index].hetero_fraction.add(final.hetero_fraction);
  }
  return out;
}

double ci95_halfwidth(const util::Accumulator& acc) {
  return 1.96 * acc.sem();
}

}  // namespace sops::engine
