#include "src/engine/ensemble.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

#include "src/engine/seed_stream.hpp"

namespace sops::engine {

std::vector<Task> grid_tasks(const GridSpec& spec) {
  if (spec.lambdas.empty() || spec.gammas.empty() || spec.replicas == 0) {
    throw std::invalid_argument(
        "grid_tasks: lambdas, gammas, and replicas must be nonempty");
  }
  const SeedStream seeds(spec.base_seed);
  std::vector<Task> tasks;
  tasks.reserve(spec.lambdas.size() * spec.gammas.size() * spec.replicas);
  for (std::size_t li = 0; li < spec.lambdas.size(); ++li) {
    for (std::size_t gi = 0; gi < spec.gammas.size(); ++gi) {
      for (std::size_t r = 0; r < spec.replicas; ++r) {
        Task t;
        t.index = tasks.size();
        t.lambda_index = li;
        t.gamma_index = gi;
        t.replica = r;
        t.lambda = spec.lambdas[li];
        t.gamma = spec.gammas[gi];
        t.seed = spec.derive_seeds ? seeds.at(t.index) : spec.base_seed;
        tasks.push_back(t);
      }
    }
  }
  return tasks;
}

std::vector<TaskResult> run_ensemble(ThreadPool& pool,
                                     std::span<const Task> tasks,
                                     const TaskFn& fn, ProgressSink* sink,
                                     const std::atomic<bool>* cancel) {
  std::vector<TaskResult> results(tasks.size());
  pool.parallel_for(tasks.size(), [&](std::size_t i) {
    const Task& task = tasks[i];
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw Cancelled("ensemble: cancelled before task " +
                      std::to_string(tasks[i].index));
    }
    const auto start = std::chrono::steady_clock::now();
    std::vector<core::Measurement> series = fn(task);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    TaskResult& slot = results[i];
    slot.task = task;
    slot.steps = series.empty() ? 0 : series.back().iteration;
    slot.series = std::move(series);
    slot.wall_seconds = elapsed.count();
    if (sink) {
      sink->record({task.index, task.lambda, task.gamma, task.replica,
                    task.seed, slot.steps, slot.wall_seconds});
    }
  });
  return results;
}

ChainProtocol resolve_protocol(const ChainJob& job, const Task& task) {
  if (job.protocol) return job.protocol(task);
  return {job.checkpoints, job.burn_in, job.interval, job.samples};
}

TaskFn make_task_fn(const ChainJob& job) {
  if (!job.make_model) {
    throw std::invalid_argument("make_task_fn: ChainJob::make_model is required");
  }
  return [&job](const Task& task) {
    std::unique_ptr<model::ChainModel> m = job.make_model(task);
    m->set_pipeline_block(job.pipeline_block);
    const ChainProtocol proto = resolve_protocol(job, task);
    std::vector<core::Measurement> series;
    if (!proto.checkpoints.empty()) {
      std::function<void(const model::ChainModel&, std::uint64_t)> cb;
      if (job.on_sample) {
        cb = [&job, &task](const model::ChainModel& c, std::uint64_t) {
          job.on_sample(task, c);
        };
      }
      series = model::run_with_checkpoints(*m, proto.checkpoints, cb);
    } else {
      std::function<void(const model::ChainModel&)> cb;
      if (job.on_sample) {
        cb = [&job, &task](const model::ChainModel& c) {
          job.on_sample(task, c);
        };
      }
      series = model::sample_equilibrium(*m, proto.burn_in, proto.interval,
                                         proto.samples, cb);
    }
    return series;
  };
}

std::vector<TaskResult> run_chain_ensemble(ThreadPool& pool,
                                           std::span<const Task> tasks,
                                           const ChainJob& job,
                                           ProgressSink* sink) {
  return run_ensemble(pool, tasks, make_task_fn(job), sink);
}

std::vector<CellAggregate> aggregate_final(
    const GridSpec& spec, std::span<const TaskResult> results) {
  const std::size_t cells = spec.lambdas.size() * spec.gammas.size();
  std::vector<CellAggregate> out(cells);
  for (std::size_t li = 0; li < spec.lambdas.size(); ++li) {
    for (std::size_t gi = 0; gi < spec.gammas.size(); ++gi) {
      CellAggregate& cell = out[li * spec.gammas.size() + gi];
      cell.lambda_index = li;
      cell.gamma_index = gi;
      cell.lambda = spec.lambdas[li];
      cell.gamma = spec.gammas[gi];
    }
  }
  // Results arrive ordered by Task::index (replica innermost), so this
  // single pass accumulates every cell in replica order — the fixed
  // order that makes the floating-point sums reproducible.
  for (const TaskResult& r : results) {
    if (r.series.empty()) continue;
    const std::size_t cell_index =
        r.task.lambda_index * spec.gammas.size() + r.task.gamma_index;
    if (cell_index >= out.size()) {
      throw std::out_of_range("aggregate_final: task outside the grid");
    }
    const core::Measurement& final = r.series.back();
    out[cell_index].perimeter_ratio.add(final.perimeter_ratio);
    out[cell_index].hetero_fraction.add(final.hetero_fraction);
  }
  return out;
}

double ci95_halfwidth(const util::Accumulator& acc) {
  return 1.96 * acc.sem();
}

}  // namespace sops::engine
