// Explicit transition matrix of Markov chain M over the full state space
// of a small system, and exact verification of Lemma 9.
//
// Each row realizes Algorithm 1 analytically: for all 6n (particle,
// direction) choices the acceptance probability is computed in closed
// form and accumulated into the row; the remainder is the self-loop.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "src/core/markov_chain.hpp"
#include "src/exact/enumerate.hpp"

namespace sops::exact {

class ChainMatrix {
 public:
  /// Builds the matrix over all connected hole-free states with the
  /// given per-color particle counts. Throws if the state space would
  /// exceed `max_states` (guard against accidental blowups).
  ChainMatrix(const std::vector<std::size_t>& color_counts,
              const core::Params& params, std::size_t max_states = 20000);

  [[nodiscard]] std::size_t num_states() const noexcept {
    return states_.size();
  }
  [[nodiscard]] const std::vector<State>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] const core::Params& params() const noexcept { return params_; }

  /// Index of a canonical state key, or -1.
  [[nodiscard]] std::ptrdiff_t index_of(const std::string& key) const;

  /// Transition probability between state indices.
  [[nodiscard]] double probability(std::size_t from, std::size_t to) const {
    return matrix_[from][to];
  }

  /// The exact stationary distribution claimed by Lemma 9:
  /// π(σ) ∝ (λγ)^{−p(σ)} γ^{−h(σ)}.
  [[nodiscard]] std::vector<double> lemma9_distribution() const;

  /// max over rows of |Σ_τ M(σ,τ) − 1| — should be ~1e-15.
  [[nodiscard]] double max_row_sum_error() const;

  /// max over pairs of |π(σ)M(σ,τ) − π(τ)M(τ,σ)| for the Lemma 9 π.
  [[nodiscard]] double max_detailed_balance_violation() const;

  /// ‖πM − π‖_∞ for the Lemma 9 π.
  [[nodiscard]] double max_stationarity_violation() const;

  /// True iff the transition graph is strongly connected (irreducible).
  [[nodiscard]] bool irreducible() const;

  /// True iff some state has a self-loop (with irreducibility ⇒ ergodic).
  [[nodiscard]] bool aperiodic() const;

  /// π as a key → probability map (for TV comparison with empirical
  /// visit frequencies).
  [[nodiscard]] std::map<std::string, double> lemma9_distribution_by_key()
      const;

  /// The spectral gap 1 − λ₂ of the chain, where λ₂ is the
  /// second-largest eigenvalue of M (M is reversible w.r.t. π, so its
  /// spectrum is real). Computed by power iteration on the symmetrized
  /// kernel D^{1/2} M D^{−1/2} with the top eigenvector deflated. The
  /// paper leaves mixing-time bounds open (Section 5); on small systems
  /// the gap can be computed exactly, e.g. to quantify how much swap
  /// moves accelerate mixing.
  [[nodiscard]] double spectral_gap(std::size_t iterations = 20000) const;

 private:
  core::Params params_;
  std::vector<State> states_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::vector<double>> matrix_;
};

}  // namespace sops::exact
