#include "src/exact/chain_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/core/locality.hpp"
#include "src/sops/invariants.hpp"

namespace sops::exact {

using core::Params;
using lattice::kDegree;
using lattice::Node;
using system::Color;
using system::ParticleIndex;
using system::ParticleSystem;

ChainMatrix::ChainMatrix(const std::vector<std::size_t>& color_counts,
                         const Params& params, std::size_t max_states)
    : params_(params), states_(enumerate_states(color_counts)) {
  if (states_.size() > max_states) {
    throw std::invalid_argument("ChainMatrix: state space too large");
  }
  for (std::size_t i = 0; i < states_.size(); ++i) {
    index_[states_[i].key()] = i;
  }

  const std::size_t m = states_.size();
  matrix_.assign(m, std::vector<double>(m, 0.0));

  for (std::size_t si = 0; si < m; ++si) {
    const State& s = states_[si];
    const std::size_t n = s.nodes.size();
    const double choice_prob = 1.0 / (6.0 * static_cast<double>(n));
    ParticleSystem sys(s.nodes, s.colors);
    double self_loop = 0.0;

    for (std::size_t p = 0; p < n; ++p) {
      const auto pi = static_cast<ParticleIndex>(p);
      const Node l = sys.position(pi);
      const Color ci = sys.color(pi);
      for (int dir = 0; dir < kDegree; ++dir) {
        const Node lp = lattice::neighbor(l, dir);
        const ParticleIndex qi = sys.particle_at(lp);

        double accept = 0.0;
        std::size_t target = si;
        if (qi == system::kNoParticle) {
          const int e = sys.neighbor_count(l);
          if (e != 5 && core::move_preserves_invariants(sys, l, dir)) {
            accept =
                std::min(1.0, core::move_weight(sys, params_, l, dir));
            // Apply, canonicalize, revert.
            ParticleSystem moved = sys;
            moved.apply_move(pi, lp);
            const auto it = index_.find(state_of(moved).key());
            if (it == index_.end()) {
              throw std::logic_error("ChainMatrix: move left state space");
            }
            target = it->second;
          }
        } else if (params_.swaps_enabled) {
          accept = std::min(1.0, core::swap_weight(sys, params_, l, dir));
          ParticleSystem swapped = sys;
          swapped.apply_swap(pi, qi);
          const auto it = index_.find(state_of(swapped).key());
          if (it == index_.end()) {
            throw std::logic_error("ChainMatrix: swap left state space");
          }
          target = it->second;
        }

        matrix_[si][target] += accept * choice_prob;
        self_loop += (1.0 - accept) * choice_prob;
      }
    }
    matrix_[si][si] += self_loop;
  }
}

std::ptrdiff_t ChainMatrix::index_of(const std::string& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? -1 : static_cast<std::ptrdiff_t>(it->second);
}

std::vector<double> ChainMatrix::lemma9_distribution() const {
  std::vector<double> weights(states_.size());
  double z = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const ParticleSystem sys(states_[i].nodes, states_[i].colors);
    const auto p = static_cast<double>(sys.perimeter_by_identity());
    const auto h = static_cast<double>(sys.hetero_edge_count());
    weights[i] = std::pow(params_.lambda * params_.gamma, -p) *
                 std::pow(params_.gamma, -h);
    z += weights[i];
  }
  for (double& w : weights) w /= z;
  return weights;
}

double ChainMatrix::max_row_sum_error() const {
  double worst = 0.0;
  for (const auto& row : matrix_) {
    double sum = 0.0;
    for (const double v : row) sum += v;
    worst = std::max(worst, std::abs(sum - 1.0));
  }
  return worst;
}

double ChainMatrix::max_detailed_balance_violation() const {
  const std::vector<double> pi = lemma9_distribution();
  double worst = 0.0;
  for (std::size_t a = 0; a < states_.size(); ++a) {
    for (std::size_t b = a + 1; b < states_.size(); ++b) {
      worst = std::max(
          worst, std::abs(pi[a] * matrix_[a][b] - pi[b] * matrix_[b][a]));
    }
  }
  return worst;
}

double ChainMatrix::max_stationarity_violation() const {
  const std::vector<double> pi = lemma9_distribution();
  double worst = 0.0;
  for (std::size_t b = 0; b < states_.size(); ++b) {
    double mass = 0.0;
    for (std::size_t a = 0; a < states_.size(); ++a) {
      mass += pi[a] * matrix_[a][b];
    }
    worst = std::max(worst, std::abs(mass - pi[b]));
  }
  return worst;
}

bool ChainMatrix::irreducible() const {
  // BFS on positive-probability arcs, forward from state 0, then check
  // the reverse graph the same way (strong connectivity both ways).
  const auto reaches_all = [&](bool reverse) {
    std::vector<char> seen(states_.size(), 0);
    std::vector<std::size_t> queue{0};
    seen[0] = 1;
    std::size_t head = 0;
    while (head < queue.size()) {
      const std::size_t v = queue[head++];
      for (std::size_t u = 0; u < states_.size(); ++u) {
        const double prob = reverse ? matrix_[u][v] : matrix_[v][u];
        if (prob > 0.0 && !seen[u]) {
          seen[u] = 1;
          queue.push_back(u);
        }
      }
    }
    return queue.size() == states_.size();
  };
  return reaches_all(false) && reaches_all(true);
}

bool ChainMatrix::aperiodic() const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (matrix_[i][i] > 0.0) return true;
  }
  return false;
}

double ChainMatrix::spectral_gap(std::size_t iterations) const {
  const std::vector<double> pi = lemma9_distribution();
  const std::size_t m = states_.size();
  if (m < 2) return 1.0;

  // Symmetrized kernel S = D^{1/2} M D^{-1/2} with D = diag(π): S is
  // symmetric for reversible M, shares M's spectrum, and has top
  // eigenvector v1[i] = sqrt(π[i]).
  std::vector<double> sqrt_pi(m);
  for (std::size_t i = 0; i < m; ++i) sqrt_pi[i] = std::sqrt(pi[i]);

  const auto apply_s = [&](const std::vector<double>& x) {
    std::vector<double> y(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      if (x[i] == 0.0) continue;
      const double xi_scaled = x[i] * sqrt_pi[i];
      for (std::size_t j = 0; j < m; ++j) {
        y[j] += xi_scaled * matrix_[i][j] / sqrt_pi[j];
      }
    }
    return y;
  };
  const auto deflate_and_normalize = [&](std::vector<double>& x) {
    double dot = 0.0;
    for (std::size_t i = 0; i < m; ++i) dot += x[i] * sqrt_pi[i];
    for (std::size_t i = 0; i < m; ++i) x[i] -= dot * sqrt_pi[i];
    double norm = 0.0;
    for (const double v : x) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& v : x) v /= norm;
    }
    return norm;
  };

  // Power iteration on |S| restricted to v1's orthogonal complement
  // estimates max(|λ₂|, |λ_min|); to isolate λ₂ (the relevant quantity
  // for mixing from above) we iterate on the positive-shifted kernel
  // (S + I)/2, whose second eigenvalue is (λ₂ + 1)/2 ≥ 0.
  std::vector<double> x(m);
  for (std::size_t i = 0; i < m; ++i) {
    x[i] = (i % 2 == 0) ? 1.0 : -0.5;  // arbitrary, not parallel to v1
  }
  deflate_and_normalize(x);
  double eigenvalue = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    std::vector<double> y = apply_s(x);
    for (std::size_t i = 0; i < m; ++i) y[i] = 0.5 * (y[i] + x[i]);
    const double norm = deflate_and_normalize(y);
    const double shifted = norm;  // ≈ (λ₂ + 1)/2 once converged
    x = std::move(y);
    if (it > 50 && std::abs(shifted - eigenvalue) < 1e-14) {
      eigenvalue = shifted;
      break;
    }
    eigenvalue = shifted;
  }
  const double lambda2 = 2.0 * eigenvalue - 1.0;
  return 1.0 - lambda2;
}

std::map<std::string, double> ChainMatrix::lemma9_distribution_by_key() const {
  const std::vector<double> pi = lemma9_distribution();
  std::map<std::string, double> out;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    out[states_[i].key()] = pi[i];
  }
  return out;
}

}  // namespace sops::exact
