#include "src/exact/enumerate.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>

#include "src/sops/invariants.hpp"

namespace sops::exact {

using lattice::kDegree;
using lattice::Node;
using system::Color;

namespace {

/// Ordering by (y, x) — matches the canonical translation anchor.
bool node_less(const Node& a, const Node& b) {
  return a.y < b.y || (a.y == b.y && a.x < b.x);
}

}  // namespace

std::string State::key() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    os << nodes[i].x << ',' << nodes[i].y << ',' << int{colors[i]} << ';';
  }
  return os.str();
}

State canonicalize(std::vector<Node> nodes, std::vector<Color> colors) {
  if (nodes.size() != colors.size() || nodes.empty()) {
    throw std::invalid_argument("canonicalize: bad input");
  }
  // Sort node/color pairs by (y, x), then translate the first to origin.
  std::vector<std::size_t> order(nodes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return node_less(nodes[a], nodes[b]);
  });
  State out;
  out.nodes.reserve(nodes.size());
  out.colors.reserve(nodes.size());
  const Node anchor = nodes[order[0]];
  for (const std::size_t i : order) {
    out.nodes.push_back(Node{nodes[i].x - anchor.x, nodes[i].y - anchor.y});
    out.colors.push_back(colors[i]);
  }
  return out;
}

State state_of(const system::ParticleSystem& sys) {
  return canonicalize(sys.positions(), sys.colors());
}

std::vector<std::vector<Node>> enumerate_shapes(std::size_t n) {
  if (n == 0) return {};
  // Grow shapes one node at a time, deduplicating canonical forms.
  std::set<std::string> seen;
  std::vector<std::vector<Node>> current{{Node{0, 0}}};
  for (std::size_t size = 2; size <= n; ++size) {
    std::vector<std::vector<Node>> next;
    seen.clear();
    for (const auto& shape : current) {
      for (const Node& v : shape) {
        for (int k = 0; k < kDegree; ++k) {
          const Node u = lattice::neighbor(v, k);
          if (std::find(shape.begin(), shape.end(), u) != shape.end()) {
            continue;
          }
          std::vector<Node> grown = shape;
          grown.push_back(u);
          State canon = canonicalize(
              grown, std::vector<Color>(grown.size(), Color{0}));
          if (seen.insert(canon.key()).second) {
            next.push_back(std::move(canon.nodes));
          }
        }
      }
    }
    current = std::move(next);
  }
  return current;
}

std::vector<State> enumerate_states(
    const std::vector<std::size_t>& color_counts) {
  if (color_counts.empty() ||
      color_counts.size() > static_cast<std::size_t>(system::kMaxColors)) {
    throw std::invalid_argument("enumerate_states: bad color_counts");
  }
  const std::size_t n =
      std::accumulate(color_counts.begin(), color_counts.end(), std::size_t{0});
  if (n == 0) throw std::invalid_argument("enumerate_states: zero particles");

  // Multiset permutations of the color sequence assigned to sorted nodes.
  std::vector<Color> base_colors;
  for (std::size_t c = 0; c < color_counts.size(); ++c) {
    base_colors.insert(base_colors.end(), color_counts[c],
                       static_cast<Color>(c));
  }
  std::sort(base_colors.begin(), base_colors.end());

  std::vector<State> out;
  for (const auto& shape : enumerate_shapes(n)) {
    if (system::nodes_have_hole(shape)) continue;
    std::vector<Color> colors = base_colors;
    do {
      State s;
      s.nodes = shape;
      s.colors = colors;
      out.push_back(std::move(s));
    } while (std::next_permutation(colors.begin(), colors.end()));
  }
  return out;
}

}  // namespace sops::exact
