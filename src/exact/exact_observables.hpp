// Exact equilibrium observables on small systems: expectations under the
// Lemma 9 distribution computed by full enumeration (no sampling error),
// including the exact probability of (β, δ)-separation per Definition 3
// via the brute-force subset search. These give rigorous miniature
// versions of the Theorem 13/14/16 trends: exact curves of E[p], E[h],
// and P[separated] as functions of λ and γ.
#pragma once

#include <vector>

#include "src/core/markov_chain.hpp"
#include "src/exact/enumerate.hpp"

namespace sops::exact {

struct ExactObservables {
  double mean_perimeter = 0.0;        ///< E_π[p(σ)]
  double mean_hetero_edges = 0.0;     ///< E_π[h(σ)]
  double mean_hetero_fraction = 0.0;  ///< E_π[h(σ)/e(σ)]
  double prob_separated = 0.0;        ///< P_π[(β, δ)-separated], exact
  double prob_alpha_compressed = 0.0; ///< P_π[p ≤ α·p_min]
};

/// Computes the exact observables for the full state space with the
/// given per-color counts under parameters `params`. β/δ/α configure the
/// event probabilities. Feasible for ≤ ~6 particles.
[[nodiscard]] ExactObservables compute_exact_observables(
    const std::vector<std::size_t>& color_counts, const core::Params& params,
    double beta, double delta, double alpha);

}  // namespace sops::exact
