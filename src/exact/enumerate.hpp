// Exhaustive enumeration of small particle-system configurations.
//
// Configurations are equivalence classes of arrangements up to
// translation (Section 2.2); a colored state additionally carries one
// color per node. These enumerations ground the exact verification of
// Lemma 9: the explicit transition matrix of M is built over all states
// of a small system and checked against the claimed stationary
// distribution (see chain_matrix.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/lattice/triangular.hpp"
#include "src/sops/particle_system.hpp"

namespace sops::exact {

/// A colored configuration in canonical form: nodes sorted by (y, x),
/// translated so the first node is the origin; colors[i] belongs to
/// nodes[i].
struct State {
  std::vector<lattice::Node> nodes;
  std::vector<system::Color> colors;

  /// Unique text key ("x,y,c;x,y,c;..."), usable as a map key.
  [[nodiscard]] std::string key() const;
};

/// Canonicalizes an arbitrary colored arrangement.
[[nodiscard]] State canonicalize(std::vector<lattice::Node> nodes,
                                 std::vector<system::Color> colors);

/// The canonical state of a live particle system (particle identities
/// are erased — states are configurations of anonymous colored dots).
[[nodiscard]] State state_of(const system::ParticleSystem& sys);

/// All connected shapes (uncolored) of n nodes up to translation.
/// Counts grow quickly; intended for n ≤ 7.
[[nodiscard]] std::vector<std::vector<lattice::Node>> enumerate_shapes(
    std::size_t n);

/// All connected, hole-free colored states with the given number of
/// particles of each color (color c appears color_counts[c] times).
[[nodiscard]] std::vector<State> enumerate_states(
    const std::vector<std::size_t>& color_counts);

}  // namespace sops::exact
