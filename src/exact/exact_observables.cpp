#include "src/exact/exact_observables.hpp"

#include <cmath>

#include "src/metrics/brute_force.hpp"
#include "src/sops/invariants.hpp"

namespace sops::exact {

ExactObservables compute_exact_observables(
    const std::vector<std::size_t>& color_counts, const core::Params& params,
    double beta, double delta, double alpha) {
  const std::vector<State> states = enumerate_states(color_counts);

  ExactObservables out;
  double z = 0.0;
  for (const State& s : states) {
    const system::ParticleSystem sys(s.nodes, s.colors);
    const auto p = static_cast<double>(sys.perimeter_by_identity());
    const auto h = static_cast<double>(sys.hetero_edge_count());
    const auto e = static_cast<double>(sys.edge_count());
    const double weight = std::pow(params.lambda * params.gamma, -p) *
                          std::pow(params.gamma, -h);
    z += weight;
    out.mean_perimeter += weight * p;
    out.mean_hetero_edges += weight * h;
    out.mean_hetero_fraction += weight * (e > 0 ? h / e : 0.0);
    if (sys.num_colors() >= 2 &&
        metrics::is_separated_brute(sys, beta, delta)) {
      out.prob_separated += weight;
    }
    if (p <= alpha * static_cast<double>(system::p_min(sys.size()))) {
      out.prob_alpha_compressed += weight;
    }
  }
  out.mean_perimeter /= z;
  out.mean_hetero_edges /= z;
  out.mean_hetero_fraction /= z;
  out.prob_separated /= z;
  out.prob_alpha_compressed /= z;
  return out;
}

}  // namespace sops::exact
