#include "src/lattice/triangular.hpp"

#include <cmath>
#include <cstdlib>

namespace sops::lattice {

std::optional<int> direction_between(Node a, Node b) noexcept {
  const Node delta{b.x - a.x, b.y - a.y};
  for (int k = 0; k < kDegree; ++k) {
    if (kDirections[static_cast<std::size_t>(k)] == delta) return k;
  }
  return std::nullopt;
}

bool adjacent(Node a, Node b) noexcept {
  return direction_between(a, b).has_value();
}

std::int64_t distance(Node a, Node b) noexcept {
  // Axial-coordinate hex distance: (|dx| + |dy| + |dx + dy|) / 2.
  const std::int64_t dx = static_cast<std::int64_t>(b.x) - a.x;
  const std::int64_t dy = static_cast<std::int64_t>(b.y) - a.y;
  return (std::llabs(dx) + std::llabs(dy) + std::llabs(dx + dy)) / 2;
}

std::pair<double, double> embed(Node v) noexcept {
  constexpr double kHalfSqrt3 = 0.86602540378443864676;
  return {static_cast<double>(v.x) + 0.5 * static_cast<double>(v.y),
          kHalfSqrt3 * static_cast<double>(v.y)};
}

EdgeRing EdgeRing::around(Node l, int dir) noexcept {
  const Node lp = neighbor(l, dir);
  EdgeRing ring;
  // Counterclockwise around the pair; see the header diagram. Positions 0
  // and 4 are the common neighbors of l and lp.
  ring.nodes[0] = neighbor(l, dir + 1);   // common A (== neighbor(lp, dir+2))
  ring.nodes[1] = neighbor(l, dir + 2);
  ring.nodes[2] = neighbor(l, dir + 3);
  ring.nodes[3] = neighbor(l, dir + 4);
  ring.nodes[4] = neighbor(l, dir - 1);   // common B (== neighbor(lp, dir-2))
  ring.nodes[5] = neighbor(lp, dir - 1);
  ring.nodes[6] = neighbor(lp, dir);
  ring.nodes[7] = neighbor(lp, dir + 1);
  return ring;
}

}  // namespace sops::lattice
