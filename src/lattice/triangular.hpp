// The triangular lattice G_Δ (Section 2.1 of the paper).
//
// Nodes are addressed in axial coordinates (x, y). With the Euclidean
// embedding (x + y/2, y·√3/2), the six unit directions below are listed
// in counterclockwise order, so direction arithmetic mod 6 walks around
// a node's neighborhood. The identity d(k−1) + d(k+1) = d(k) holds, which
// the edge-ring construction in `EdgeRing` relies on.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>

namespace sops::lattice {

/// A node of G_Δ in axial coordinates.
struct Node {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr bool operator==(const Node&, const Node&) = default;
  friend constexpr auto operator<=>(const Node&, const Node&) = default;
};

inline constexpr int kDegree = 6;

/// The six lattice directions in counterclockwise order starting from +x.
inline constexpr std::array<Node, kDegree> kDirections = {{
    {1, 0},    // 0:   0 degrees (E)
    {0, 1},    // 1:  60 degrees (NE)
    {-1, 1},   // 2: 120 degrees (NW)
    {-1, 0},   // 3: 180 degrees (W)
    {0, -1},   // 4: 240 degrees (SW)
    {1, -1},   // 5: 300 degrees (SE)
}};

/// Direction index arithmetic modulo 6 (handles negative offsets).
[[nodiscard]] constexpr int dir_mod(int k) noexcept {
  return ((k % kDegree) + kDegree) % kDegree;
}

[[nodiscard]] constexpr Node neighbor(Node v, int dir) noexcept {
  const Node d = kDirections[static_cast<std::size_t>(dir_mod(dir))];
  return Node{v.x + d.x, v.y + d.y};
}

/// Opposite direction.
[[nodiscard]] constexpr int opposite(int dir) noexcept {
  return dir_mod(dir + 3);
}

/// If `b` is a lattice neighbor of `a`, the direction index from a to b.
[[nodiscard]] std::optional<int> direction_between(Node a, Node b) noexcept;

/// True iff a and b are adjacent in G_Δ.
[[nodiscard]] bool adjacent(Node a, Node b) noexcept;

/// Graph (hex) distance between two nodes.
[[nodiscard]] std::int64_t distance(Node a, Node b) noexcept;

/// Packs a node into a 64-bit key for the hash containers. Injective over
/// the full int32 coordinate range.
[[nodiscard]] constexpr std::uint64_t pack(Node v) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.x)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.y));
}

[[nodiscard]] constexpr Node unpack(std::uint64_t key) noexcept {
  return Node{static_cast<std::int32_t>(key >> 32),
              static_cast<std::int32_t>(key & 0xffffffffULL)};
}

/// Euclidean embedding of a node (unit edge length).
[[nodiscard]] std::pair<double, double> embed(Node v) noexcept;

/// The 8-node ring around an edge (l, l') of G_Δ, in cyclic order:
///
///     common_a, l_side[0..2], common_b, lp_side[0..2]
///
/// where common_a/common_b are the two nodes adjacent to *both* endpoints
/// (the candidate set S of Properties 4 and 5), l_side are the remaining
/// neighbors of l and lp_side the remaining neighbors of l'. Consecutive
/// ring nodes (cyclically) are adjacent in G_Δ, so local connectivity
/// within N(l ∪ l') reduces to run analysis on this ring.
struct EdgeRing {
  std::array<Node, 8> nodes;

  static constexpr std::size_t kCommonA = 0;  // index of first common nbr
  static constexpr std::size_t kCommonB = 4;  // index of second common nbr

  /// Builds the ring for the edge from l toward direction `dir`.
  static EdgeRing around(Node l, int dir) noexcept;
};

}  // namespace sops::lattice
