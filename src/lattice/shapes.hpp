// Constructions of particle arrangements on G_Δ: the hexagonal
// minimum-perimeter family from Lemma 2 / Appendix A.1, plus the line,
// parallelogram, and random-blob initial configurations used by the
// experiments in Section 3.2.
#pragma once

#include <cstddef>
#include <vector>

#include "src/lattice/triangular.hpp"
#include "src/util/rng.hpp"

namespace sops::lattice {

/// All nodes of the regular hexagon of side length `ell` centered at the
/// origin: 3·ell² + 3·ell + 1 nodes (Figure 4a).
[[nodiscard]] std::vector<Node> hexagon(std::int32_t ell);

/// The Lemma 2 construction for arbitrary n: the largest full hexagon of
/// side ell with 3ell²+3ell+1 ≤ n, plus the k leftover nodes added around
/// the outside in a single layer, completing one side before starting the
/// next (Figure 4b). Guarantees a connected, hole-free arrangement whose
/// perimeter is at most 2√3·√n.
[[nodiscard]] std::vector<Node> compact_blob(std::size_t n);

/// n nodes in a straight line along direction 0 — the maximum-perimeter
/// connected configuration.
[[nodiscard]] std::vector<Node> line(std::size_t n);

/// A parallelogram with `rows` rows of `cols` nodes.
[[nodiscard]] std::vector<Node> parallelogram(std::int32_t cols,
                                              std::int32_t rows);

/// A random connected, hole-free arrangement of n nodes grown by repeated
/// boundary accretion: starting from the origin, repeatedly attaches a
/// uniformly random unoccupied node adjacent to the current arrangement,
/// rejecting attachments that would enclose a hole. Used as the
/// "arbitrary initial configuration" of Figures 2 and 3.
[[nodiscard]] std::vector<Node> random_blob(std::size_t n, util::Rng& rng);

/// Two compact blobs of sizes n1 and n2 joined by a single-node bridge —
/// a deliberately *separated* arrangement for testing the separation
/// detector and for worst-case mixing starts.
[[nodiscard]] std::vector<Node> dumbbell(std::size_t n1, std::size_t n2,
                                         std::int32_t gap);

}  // namespace sops::lattice
