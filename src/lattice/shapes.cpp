#include "src/lattice/shapes.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "src/util/hash_table.hpp"

namespace sops::lattice {

namespace {

/// Hex distance from the origin.
[[nodiscard]] std::int64_t ring_radius(Node v) noexcept {
  return distance(Node{0, 0}, v);
}

/// The ring of nodes at hex distance `r` from the origin, in cyclic order
/// starting at (r, 0) and proceeding counterclockwise.
[[nodiscard]] std::vector<Node> ring(std::int32_t r) {
  if (r == 0) return {Node{0, 0}};
  std::vector<Node> out;
  out.reserve(static_cast<std::size_t>(6) * static_cast<std::size_t>(r));
  Node v{r, 0};
  // Walk r steps in each of the six directions starting with d2 so the
  // path turns counterclockwise around the origin.
  for (int side = 0; side < kDegree; ++side) {
    for (std::int32_t step = 0; step < r; ++step) {
      out.push_back(v);
      v = neighbor(v, 2 + side);
    }
  }
  return out;
}

/// True iff the occupied neighbors of `v` form one nonempty contiguous
/// cyclic run — the local condition under which attaching `v` to an
/// arrangement keeps it hole-free and simply connected.
[[nodiscard]] bool contiguous_occupied_ring(const util::FlatSet& occ, Node v) {
  int occupied_count = 0;
  int transitions = 0;
  bool prev = occ.contains(pack(neighbor(v, kDegree - 1)));
  for (int k = 0; k < kDegree; ++k) {
    const bool cur = occ.contains(pack(neighbor(v, k)));
    occupied_count += cur ? 1 : 0;
    transitions += (cur != prev) ? 1 : 0;
    prev = cur;
  }
  return occupied_count > 0 && transitions <= 2;
}

}  // namespace

std::vector<Node> hexagon(std::int32_t ell) {
  if (ell < 0) throw std::invalid_argument("hexagon: negative side length");
  std::vector<Node> out;
  out.reserve(static_cast<std::size_t>(3 * ell * ell + 3 * ell + 1));
  for (std::int32_t x = -ell; x <= ell; ++x) {
    for (std::int32_t y = -ell; y <= ell; ++y) {
      if (std::abs(x + y) <= ell) out.push_back(Node{x, y});
    }
  }
  return out;
}

std::vector<Node> compact_blob(std::size_t n) {
  if (n == 0) return {};
  // Largest full hexagon with 3l^2+3l+1 <= n.
  std::int32_t ell = 0;
  while (static_cast<std::size_t>(3 * (ell + 1) * (ell + 1) + 3 * (ell + 1) +
                                  1) <= n) {
    ++ell;
  }
  std::vector<Node> out = hexagon(ell);
  const std::size_t base = out.size();
  if (base < n) {
    const std::vector<Node> outer = ring(ell + 1);
    const std::size_t k = n - base;
    out.insert(out.end(), outer.begin(),
               outer.begin() + static_cast<std::ptrdiff_t>(k));
  }
  return out;
}

std::vector<Node> line(std::size_t n) {
  std::vector<Node> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Node{static_cast<std::int32_t>(i), 0});
  }
  return out;
}

std::vector<Node> parallelogram(std::int32_t cols, std::int32_t rows) {
  if (cols <= 0 || rows <= 0) {
    throw std::invalid_argument("parallelogram: nonpositive dimension");
  }
  std::vector<Node> out;
  out.reserve(static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows));
  for (std::int32_t y = 0; y < rows; ++y) {
    for (std::int32_t x = 0; x < cols; ++x) {
      out.push_back(Node{x, y});
    }
  }
  return out;
}

std::vector<Node> random_blob(std::size_t n, util::Rng& rng) {
  if (n == 0) return {};
  std::vector<Node> out{Node{0, 0}};
  util::FlatSet occ;
  occ.insert(pack(Node{0, 0}));

  std::vector<Node> frontier;
  util::FlatSet in_frontier;
  const auto push_frontier = [&](Node v) {
    const std::uint64_t key = pack(v);
    if (!occ.contains(key) && in_frontier.insert(key)) frontier.push_back(v);
  };
  for (int k = 0; k < kDegree; ++k) push_frontier(neighbor(Node{0, 0}, k));

  while (out.size() < n) {
    Node chosen{};
    bool found = false;
    // Random picks first; fall back to a scan so termination is certain
    // (a valid attachment always exists on the outer boundary).
    for (int attempt = 0; attempt < 64 && !found; ++attempt) {
      const auto idx = static_cast<std::size_t>(rng.below(frontier.size()));
      if (contiguous_occupied_ring(occ, frontier[idx])) {
        chosen = frontier[idx];
        frontier[idx] = frontier.back();
        frontier.pop_back();
        found = true;
      }
    }
    if (!found) {
      for (std::size_t idx = 0; idx < frontier.size(); ++idx) {
        if (contiguous_occupied_ring(occ, frontier[idx])) {
          chosen = frontier[idx];
          frontier[idx] = frontier.back();
          frontier.pop_back();
          found = true;
          break;
        }
      }
    }
    if (!found) {
      throw std::logic_error("random_blob: no valid attachment node");
    }
    in_frontier.erase(pack(chosen));
    occ.insert(pack(chosen));
    out.push_back(chosen);
    for (int k = 0; k < kDegree; ++k) push_frontier(neighbor(chosen, k));
  }
  return out;
}

std::vector<Node> dumbbell(std::size_t n1, std::size_t n2, std::int32_t gap) {
  if (n1 == 0 || n2 == 0 || gap < 1) {
    throw std::invalid_argument("dumbbell: need n1,n2 >= 1 and gap >= 1");
  }
  std::vector<Node> left = compact_blob(n1);
  std::vector<Node> right = compact_blob(n2);

  std::int32_t left_max_x = left.front().x;
  for (const Node& v : left) {
    if (v.y == 0) left_max_x = std::max(left_max_x, v.x);
  }
  std::int32_t right_min_x = right.front().x;
  for (const Node& v : right) {
    if (v.y == 0) right_min_x = std::min(right_min_x, v.x);
  }

  std::vector<Node> out = std::move(left);
  for (std::int32_t i = 1; i <= gap; ++i) {
    out.push_back(Node{left_max_x + i, 0});
  }
  const std::int32_t shift = left_max_x + gap + 1 - right_min_x;
  for (const Node& v : right) {
    out.push_back(Node{v.x + shift, v.y});
  }
  return out;
}

}  // namespace sops::lattice
