// Token codec shared by model state serializers (save_state/restore) and
// the parameter parsers behind Factory::build. Same discipline as the
// shard wire and checkpoint snapshot formats: single-space separators,
// no empty tokens, C99 hexfloat doubles (decode(encode(x)) bit-exact),
// parse-or-fail with a message naming the offending field.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sops::model::state {

// ---- encoding: append one token to a line under construction ----------

void put_u64(std::string& out, std::uint64_t v);
void put_i64(std::string& out, std::int64_t v);
/// C99 hexfloat ("%a"), exactly as the wire/snapshot codecs write doubles.
void put_double(std::string& out, double v);
/// Zero-padded 16-digit lowercase hex (RNG words).
void put_hex16(std::string& out, std::uint64_t v);

// ---- decoding: state lines → tokens → values --------------------------

/// Splits one state line on single spaces. Throws ModelError on empty
/// or whitespace-malformed tokens. `what` names the line in messages.
[[nodiscard]] std::vector<std::string_view> tokens(std::string_view line,
                                                   std::string_view what);

/// tokens(), then requires tokens[0] == keyword and an exact count.
[[nodiscard]] std::vector<std::string_view> expect(std::string_view line,
                                                   std::string_view keyword,
                                                   std::size_t n_tokens);

/// Fetches state[index], requiring it to exist; `keyword` names the
/// line wanted in the error message.
[[nodiscard]] std::string_view line_at(std::span<const std::string> state,
                                       std::size_t index,
                                       std::string_view keyword);

[[nodiscard]] std::uint64_t get_u64(std::string_view tok,
                                    std::string_view what);
[[nodiscard]] std::int64_t get_i64(std::string_view tok,
                                   std::string_view what);
[[nodiscard]] double get_double(std::string_view tok, std::string_view what);
[[nodiscard]] std::uint64_t get_hex16(std::string_view tok,
                                      std::string_view what);

// ---- "key=value" parameter helpers for Factory::build -----------------

/// Splits "key=value" at the first '='; returns false if there is none.
bool split_param(std::string_view param, std::string_view& key,
                 std::string_view& value);

/// Parses an unsigned decimal. Throws ModelError
/// "<field>: expected unsigned integer, got '<token>'" on failure —
/// phrased so the service layer's "service: job 'X': " prefix composes
/// into the established refusal format.
[[nodiscard]] std::uint64_t parse_u64_param(std::string_view field,
                                            std::string_view token);

/// Parses a double (decimal or hexfloat). Throws ModelError
/// "<field>: expected number, got '<token>'" on failure.
[[nodiscard]] double parse_double_param(std::string_view field,
                                        std::string_view token);

}  // namespace sops::model::state
