// Pulls every first-class model into the registry. Lives in its own
// link target (sops_models) so libraries that only *consume* the
// registry (engine, checkpoint, service) don't link every model; app
// entry points (harness, servers, tests) call this once at startup.
#pragma once

namespace sops::model {

/// Registers the built-in model families: separation, alignment, ising,
/// schelling. Idempotent and safe to call repeatedly.
void ensure_builtin_models();

}  // namespace sops::model
