#include "src/model/registry.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

namespace sops::model {

namespace {

// Keyed storage with stable Factory addresses (node-based map): a
// find_model() pointer handed to a worker thread must outlive any later
// registration. The mutex covers registration vs. lookup races at
// startup; after ensure_builtin_models() the map is effectively
// read-only.
std::map<std::string, Factory, std::less<>>& registry_map() {
  static std::map<std::string, Factory, std::less<>> map;
  return map;
}

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

void register_model(Factory factory) {
  if (factory.tag.empty() ||
      factory.tag.find_first_of(" \t\n\r") != std::string::npos) {
    throw ModelError("register_model: tag must be one nonempty token");
  }
  if (!factory.build || !factory.restore) {
    throw ModelError("register_model: factory for '" + factory.tag +
                     "' must provide both build and restore");
  }
  const std::scoped_lock lock(registry_mutex());
  registry_map().try_emplace(factory.tag, std::move(factory));
}

const Factory* find_model(std::string_view tag) noexcept {
  const std::scoped_lock lock(registry_mutex());
  const auto& map = registry_map();
  const auto it = map.find(tag);
  return it == map.end() ? nullptr : &it->second;
}

const Factory& require_model(std::string_view tag) {
  const Factory* factory = find_model(tag);
  if (factory != nullptr) return *factory;
  std::string names;
  for (const std::string& n : registered_models()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  throw ModelError("model '" + std::string(tag) +
                   "' not registered (registered: " + names + ")");
}

std::vector<std::string> registered_models() {
  const std::scoped_lock lock(registry_mutex());
  std::vector<std::string> out;
  out.reserve(registry_map().size());
  for (const auto& [tag, factory] : registry_map()) out.push_back(tag);
  return out;
}

std::unique_ptr<ChainModel> build_from_spec(std::string_view tag,
                                            std::span<const std::string> params,
                                            const TaskPoint& point) {
  return require_model(tag).build(params, point);
}

}  // namespace sops::model
