// The separation chain behind the ChainModel seam — the paper's own
// model, wrapped so the generic stack drives it exactly as core/runner
// did: one persistent StepPipeline per trajectory, p_min computed once,
// Measurement math byte-identical to core::measure.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/markov_chain.hpp"
#include "src/model/model.hpp"

namespace sops::model {

inline constexpr std::string_view kSeparationTag = "separation";

/// Wraps an already-constructed chain. `pipeline_block` as in
/// engine::ChainJob (0 = StepPipeline default; trajectory-neutral).
[[nodiscard]] std::unique_ptr<ChainModel> make_separation(
    core::SeparationChain chain, std::size_t pipeline_block = 0);

/// Downcast for separation-specific on_sample hooks (certificates,
/// renders): the wrapped live chain, or ModelError if `model` is not
/// the separation model.
[[nodiscard]] const core::SeparationChain& separation_chain(
    const ChainModel& model);

/// Serializes raw separation state into the model's state-line grammar:
///   params <λ> <γ> <0|1>
///   rng <hex16> ×4
///   counters <u64> ×8
///   particles <n>
///   p <x> <y> <color> ×n
/// Shared with the checkpoint codec, which uses it to lift v1 snapshot
/// bodies (the same fields, typed) into v2 model-state blocks.
[[nodiscard]] std::vector<std::string> encode_separation_state(
    double lambda, double gamma, bool swaps_enabled,
    const util::Rng::State& rng,
    const core::SeparationChain::Counters& counters,
    std::span<const lattice::Node> positions,
    std::span<const system::Color> colors);

/// Registers the "separation" factory: params blob=N (required),
/// colors=K (default 2), swaps=0|1 (default 1); each task builds its
/// blob and coloring from its own seed. Idempotent.
void register_separation_model();

}  // namespace sops::model
