#include "src/model/builtin.hpp"

#include "src/alignment/alignment_model.hpp"
#include "src/ising/ising_model.hpp"
#include "src/model/separation.hpp"
#include "src/schelling/schelling_model.hpp"

namespace sops::model {

void ensure_builtin_models() {
  // register_model is first-wins idempotent, so repeated calls (every
  // harness main, every test fixture) are cheap no-ops.
  register_separation_model();
  alignment::register_alignment_model();
  ising::register_ising_model();
  schelling::register_schelling_model();
}

}  // namespace sops::model
