// The model factory registry: maps a wire/snapshot model tag
// ("separation", "alignment", …) to the functions that build a fresh
// trajectory from job params or restore one from checkpoint state.
//
// Layering: this registry is the ONLY place the generic stack (engine,
// checkpoint, service, harness) learns about concrete models, and it
// learns them by tag at runtime. The registry itself has no model
// dependencies; each model library registers its own factory, and
// model::ensure_builtin_models() (src/model/builtin.hpp, a separate
// link target) pulls in every first-class model for app entry points.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/model/model.hpp"

namespace sops::model {

/// The per-task coordinates a factory builds from. A deliberately
/// engine-free mirror of engine::Task (src/model cannot depend on
/// src/engine): dense index, replica ordinal, the (λ, γ) cell, and the
/// task's RNG seed.
struct TaskPoint {
  std::size_t index = 0;
  std::size_t replica = 0;
  double lambda = 0.0;
  double gamma = 0.0;
  std::uint64_t seed = 0;
};

/// One registered model family.
struct Factory {
  /// Wire/snapshot tag; one nonempty token, stable across versions.
  std::string tag;

  /// Builds a fresh trajectory for one task from "key=value" job params
  /// (the same strings JobSpec::params carries on the wire). Must be a
  /// pure function of (params, point) — workers build independently.
  /// Throws ModelError on unrecognized or out-of-range params, phrased
  /// "<field>: <detail>" so service refusals compose.
  std::function<std::unique_ptr<ChainModel>(
      std::span<const std::string> params, const TaskPoint& point)>
      build;

  /// Rebuilds a live trajectory from ChainModel::save_state() lines.
  /// Throws ModelError on malformed or non-live state.
  std::function<std::unique_ptr<ChainModel>(
      std::span<const std::string> state)>
      restore;
};

/// Registers a factory. Idempotent: a tag already registered is left in
/// place (first registration wins), so repeated ensure-style calls are
/// safe. Throws ModelError if the factory is malformed (empty tag or
/// missing functions).
void register_model(Factory factory);

/// Looks a tag up; nullptr if unknown. The pointer stays valid for the
/// process lifetime. Thread-safe against concurrent registration.
[[nodiscard]] const Factory* find_model(std::string_view tag) noexcept;

/// find_model or throw ModelError naming the tag and the registered set
/// ("model 'x' not registered (registered: a, b, c)").
[[nodiscard]] const Factory& require_model(std::string_view tag);

/// All registered tags, sorted.
[[nodiscard]] std::vector<std::string> registered_models();

/// require_model(tag).build(params, point).
[[nodiscard]] std::unique_ptr<ChainModel> build_from_spec(
    std::string_view tag, std::span<const std::string> params,
    const TaskPoint& point);

}  // namespace sops::model
