// The model seam: everything above src/core (engine, checkpoint,
// service, harness) drives simulations through this interface instead of
// naming a concrete chain type. A ChainModel owns one trajectory — RNG,
// counters, configuration — and exposes exactly what the generic stack
// needs: advance, measure, and serialize/restore for checkpointing.
//
// Determinism contract (inherited from core): a model's trajectory is a
// pure function of its construction inputs; run(a); run(b) is identical
// to run(a + b); save_state() captures enough to make a restored model's
// future byte-identical to the original's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/runner.hpp"

namespace sops::model {

/// Errors in model construction or state restore: bad parameters,
/// malformed state lines, unknown tags. The message is phrased for the
/// layer that asked (service refusals, checkpoint rejects) to wrap.
class ModelError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One simulation trajectory behind a model-agnostic interface. Always
/// held by unique_ptr: implementations may pin internal references
/// (e.g. a step pipeline into the wrapped chain), so the object is
/// neither copyable nor movable.
class ChainModel {
 public:
  ChainModel() = default;
  ChainModel(const ChainModel&) = delete;
  ChainModel& operator=(const ChainModel&) = delete;
  virtual ~ChainModel() = default;

  /// The registry tag this model was built under ("separation",
  /// "alignment", …). Snapshots and wire documents carry it; mixing
  /// tags is a named refusal everywhere.
  [[nodiscard]] virtual std::string_view tag() const noexcept = 0;

  /// Advances the trajectory by exactly `iterations` proposals.
  virtual void run(std::uint64_t iterations) = 0;

  /// Proposals executed so far (the model's absolute clock).
  [[nodiscard]] virtual std::uint64_t steps() const noexcept = 0;

  /// Scalar observables of the current configuration, in the shared
  /// Measurement layout. Models map their natural observables onto the
  /// slots; observable_names() documents the mapping per slot.
  [[nodiscard]] virtual core::Measurement measure() const = 0;

  /// Human-readable names for the Measurement slots, in field order:
  /// {iteration, perimeter, edges, hetero_edges, perimeter_ratio,
  /// hetero_fraction}. Reports use these to label columns honestly when
  /// a model repurposes a slot (e.g. Ising magnetization).
  [[nodiscard]] virtual std::vector<std::string> observable_names()
      const = 0;

  /// Serializes the full live state (parameters, RNG, counters,
  /// configuration) as newline-free token lines. The format is owned by
  /// the model; the checkpoint codec stores the lines verbatim and
  /// hands them back to Factory::restore. Empty only for models with no
  /// restorable state.
  [[nodiscard]] virtual std::vector<std::string> save_state() const = 0;

  /// Batched-run granularity hint (0 = implementation default). Affects
  /// buffer sizes only — trajectories are byte-identical at every
  /// value. Default: no-op for models without a batched pipeline.
  virtual void set_pipeline_block(std::size_t /*block*/) {}

  /// Band-execution hook: the live separation chain when this model can
  /// be advanced by core::ReplicaBand in lock-step with sibling replicas
  /// (byte-identical to run(), per the band's contract), nullptr for
  /// models without a bandable chain. A caller that takes the chain owns
  /// the trajectory until it next calls run()/measure() through the
  /// model — mixing band steps *between* those calls is fine (both
  /// rebuild their derived state on entry), interleaving them is not.
  [[nodiscard]] virtual core::SeparationChain* band_chain() noexcept {
    return nullptr;
  }
};

/// Runs the model to each absolute iteration in `checkpoints` (must be
/// nondecreasing; a leading 0 records the initial state) and returns one
/// Measurement per checkpoint. Mirrors core::run_with_checkpoints
/// exactly — for the separation model the two produce byte-identical
/// series.
std::vector<core::Measurement> run_with_checkpoints(
    ChainModel& model, std::span<const std::uint64_t> checkpoints,
    const std::function<void(const ChainModel&, std::uint64_t)>&
        on_checkpoint = {});

/// Equilibrium sampling: runs `burn_in` steps, then records `samples`
/// measurements `interval` steps apart (the first at `burn_in` itself),
/// invoking `on_sample` (if set) at each sample point.
std::vector<core::Measurement> sample_equilibrium(
    ChainModel& model, std::uint64_t burn_in, std::uint64_t interval,
    std::size_t samples,
    const std::function<void(const ChainModel&)>& on_sample = {});

}  // namespace sops::model
