#include "src/model/state.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "src/model/model.hpp"

namespace sops::model::state {

namespace {

[[noreturn]] void fail(std::string_view what, std::string_view msg) {
  throw ModelError(std::string(what) + ": " + std::string(msg));
}

bool is_token(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

void put_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, ptr);
}

void put_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, ptr);
}

void put_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
}

void put_hex16(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

std::vector<std::string_view> tokens(std::string_view line,
                                     std::string_view what) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto sp = line.find(' ', start);
    const std::string_view tok = line.substr(start, sp - start);
    if (!is_token(tok)) fail(what, "empty or malformed token");
    out.push_back(tok);
    if (sp == std::string_view::npos) break;
    start = sp + 1;
  }
  return out;
}

std::vector<std::string_view> expect(std::string_view line,
                                     std::string_view keyword,
                                     std::size_t n_tokens) {
  const auto toks = tokens(line, keyword);
  if (toks[0] != keyword) {
    throw ModelError("state: expected '" + std::string(keyword) +
                     "' line, got '" + std::string(toks[0]) + "'");
  }
  if (toks.size() != n_tokens) {
    throw ModelError("state: wrong token count for '" + std::string(keyword) +
                     "' line");
  }
  return toks;
}

std::string_view line_at(std::span<const std::string> state,
                         std::size_t index, std::string_view keyword) {
  if (index >= state.size()) {
    throw ModelError("state: unexpected end of state (wanted '" +
                     std::string(keyword) + "' line)");
  }
  return state[index];
}

std::uint64_t get_u64(std::string_view tok, std::string_view what) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    fail(what, "expected unsigned integer");
  }
  return out;
}

std::int64_t get_i64(std::string_view tok, std::string_view what) {
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    fail(what, "expected integer");
  }
  return out;
}

double get_double(std::string_view tok, std::string_view what) {
  const std::string copy(tok);
  char* end = nullptr;
  const double out = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    fail(what, "expected hexfloat value");
  }
  return out;
}

std::uint64_t get_hex16(std::string_view tok, std::string_view what) {
  if (tok.size() != 16) fail(what, "expected 16-digit hex value");
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out, 16);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    fail(what, "expected 16-digit hex value");
  }
  return out;
}

bool split_param(std::string_view param, std::string_view& key,
                 std::string_view& value) {
  const auto eq = param.find('=');
  if (eq == std::string_view::npos) return false;
  key = param.substr(0, eq);
  value = param.substr(eq + 1);
  return true;
}

std::uint64_t parse_u64_param(std::string_view field,
                              std::string_view token) {
  // Digit-by-digit with overflow detection, matching the service
  // layer's historical parse (and its refusal message) exactly.
  if (token.empty()) {
    fail(field, "expected unsigned integer, got '" + std::string(token) + "'");
  }
  std::uint64_t out = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      fail(field,
           "expected unsigned integer, got '" + std::string(token) + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (UINT64_MAX - digit) / 10) {
      fail(field, "value out of range: '" + std::string(token) + "'");
    }
    out = out * 10 + digit;
  }
  return out;
}

double parse_double_param(std::string_view field, std::string_view token) {
  const std::string copy(token);
  char* end = nullptr;
  const double out = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    fail(field, "expected number, got '" + std::string(token) + "'");
  }
  return out;
}

}  // namespace sops::model::state
