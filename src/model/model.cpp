#include "src/model/model.hpp"

#include <stdexcept>

namespace sops::model {

std::vector<core::Measurement> run_with_checkpoints(
    ChainModel& model, std::span<const std::uint64_t> checkpoints,
    const std::function<void(const ChainModel&, std::uint64_t)>&
        on_checkpoint) {
  std::vector<core::Measurement> out;
  out.reserve(checkpoints.size());
  for (const std::uint64_t target : checkpoints) {
    const std::uint64_t now = model.steps();
    if (target < now) {
      throw std::invalid_argument(
          "run_with_checkpoints: checkpoints must be nondecreasing");
    }
    model.run(target - now);
    out.push_back(model.measure());
    if (on_checkpoint) on_checkpoint(model, target);
  }
  return out;
}

std::vector<core::Measurement> sample_equilibrium(
    ChainModel& model, std::uint64_t burn_in, std::uint64_t interval,
    std::size_t samples,
    const std::function<void(const ChainModel&)>& on_sample) {
  model.run(burn_in);
  std::vector<core::Measurement> out;
  out.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    if (s > 0) model.run(interval);
    out.push_back(model.measure());
    if (on_sample) on_sample(model);
  }
  return out;
}

}  // namespace sops::model
