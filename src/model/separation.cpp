#include "src/model/separation.hpp"

#include <string_view>
#include <utility>

#include "src/core/coloring.hpp"
#include "src/core/step_pipeline.hpp"
#include "src/lattice/shapes.hpp"
#include "src/model/registry.hpp"
#include "src/model/state.hpp"
#include "src/sops/invariants.hpp"

namespace sops::model {

namespace {

class SeparationModel final : public ChainModel {
 public:
  SeparationModel(core::SeparationChain chain, std::size_t pipeline_block)
      : chain_(std::move(chain)),
        pmin_(system::p_min(chain_.system().size())),
        block_(pipeline_block) {}

  [[nodiscard]] std::string_view tag() const noexcept override {
    return kSeparationTag;
  }

  void run(std::uint64_t iterations) override {
    // One pipeline per trajectory, created lazily so it binds the
    // chain at its final (heap) address; recreated only when the block
    // size changes, which is trajectory-neutral by the pipeline's
    // byte-identity contract.
    if (!pipeline_) {
      pipeline_ = std::make_unique<core::StepPipeline>(
          chain_, block_ == 0 ? core::StepPipeline::kDefaultBlockSize
                              : block_);
    }
    pipeline_->run(iterations);
  }

  [[nodiscard]] std::uint64_t steps() const noexcept override {
    return chain_.counters().steps;
  }

  [[nodiscard]] core::Measurement measure() const override {
    return core::measure(chain_, pmin_);
  }

  [[nodiscard]] std::vector<std::string> observable_names() const override {
    return {"iteration",       "perimeter", "edges",
            "hetero_edges",    "perimeter_ratio",
            "hetero_fraction"};
  }

  [[nodiscard]] std::vector<std::string> save_state() const override {
    return encode_separation_state(
        chain_.params().lambda, chain_.params().gamma,
        chain_.params().swaps_enabled, chain_.rng_state(), chain_.counters(),
        chain_.system().positions(), chain_.system().colors());
  }

  void set_pipeline_block(std::size_t block) override {
    if (block == block_) return;
    block_ = block;
    pipeline_.reset();
  }

  // Bandable: the band and the pipeline both rebuild their derived
  // occupancy state at every entry, so alternating band steps with
  // run()/measure() keeps every path byte-identical.
  [[nodiscard]] core::SeparationChain* band_chain() noexcept override {
    return &chain_;
  }

  [[nodiscard]] const core::SeparationChain& chain() const noexcept {
    return chain_;
  }

 private:
  core::SeparationChain chain_;
  std::int64_t pmin_;
  std::size_t block_;
  std::unique_ptr<core::StepPipeline> pipeline_;
};

std::unique_ptr<ChainModel> restore_separation(
    std::span<const std::string> lines) {
  namespace st = sops::model::state;
  std::size_t at = 0;
  const auto params =
      st::expect(st::line_at(lines, at++, "params"), "params", 4);
  const double lambda = st::get_double(params[1], "params");
  const double gamma = st::get_double(params[2], "params");
  bool swaps_enabled = false;
  if (params[3] == "1") {
    swaps_enabled = true;
  } else if (params[3] == "0") {
    swaps_enabled = false;
  } else {
    throw ModelError("params: swaps flag must be 0 or 1");
  }

  const auto rng_toks = st::expect(st::line_at(lines, at++, "rng"), "rng", 5);
  util::Rng::State rng{};
  for (std::size_t i = 0; i < 4; ++i) {
    rng[i] = st::get_hex16(rng_toks[1 + i], "rng");
  }
  if (rng == util::Rng::State{}) {
    throw ModelError(
        "rng state is all-zero — not a live chain state "
        "(stateless completion snapshot, or corrupt)");
  }

  const auto cnt =
      st::expect(st::line_at(lines, at++, "counters"), "counters", 9);
  core::SeparationChain::Counters counters;
  counters.steps = st::get_u64(cnt[1], "counters");
  counters.move_proposals = st::get_u64(cnt[2], "counters");
  counters.moves_accepted = st::get_u64(cnt[3], "counters");
  counters.rejected_five = st::get_u64(cnt[4], "counters");
  counters.rejected_locality = st::get_u64(cnt[5], "counters");
  counters.rejected_metropolis = st::get_u64(cnt[6], "counters");
  counters.swap_proposals = st::get_u64(cnt[7], "counters");
  counters.swaps_accepted = st::get_u64(cnt[8], "counters");

  const auto head =
      st::expect(st::line_at(lines, at++, "particles"), "particles", 2);
  const std::uint64_t count = st::get_u64(head[1], "particles");
  if (count == 0) throw ModelError("snapshot carries no particles");
  std::vector<lattice::Node> positions;
  std::vector<system::Color> colors;
  positions.reserve(count);
  colors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto p = st::expect(st::line_at(lines, at++, "p"), "p", 4);
    const std::int64_t x = st::get_i64(p[1], "p");
    const std::int64_t y = st::get_i64(p[2], "p");
    if (x < INT32_MIN || x > INT32_MAX || y < INT32_MIN || y > INT32_MAX) {
      throw ModelError("p: particle coordinate out of int32 range");
    }
    const std::uint64_t color = st::get_u64(p[3], "p");
    if (color >= system::kMaxColors) {
      throw ModelError("p: particle color out of range");
    }
    positions.push_back(lattice::Node{static_cast<std::int32_t>(x),
                                      static_cast<std::int32_t>(y)});
    colors.push_back(static_cast<system::Color>(color));
  }
  if (at != lines.size()) {
    throw ModelError("state: trailing content after particle list");
  }

  // The seed only re-derives the ctor RNG, whose state is immediately
  // overwritten with the saved mid-stream state.
  core::SeparationChain chain(system::ParticleSystem(positions, colors),
                              core::Params{lambda, gamma, swaps_enabled},
                              counters.steps + 1);
  chain.set_rng_state(rng);
  chain.set_counters(counters);
  return make_separation(std::move(chain));
}

std::unique_ptr<ChainModel> build_separation(
    std::span<const std::string> params, const TaskPoint& t) {
  std::uint64_t blob = 0;
  std::uint64_t n_colors = 2;
  std::uint64_t swaps = 1;
  bool blob_set = false;
  for (const std::string& p : params) {
    const std::size_t eq = p.find('=');
    const std::string key = eq == std::string::npos ? p : p.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : p.substr(eq + 1);
    if (key == "blob") {
      blob = state::parse_u64_param("params: blob", value);
      blob_set = true;
    } else if (key == "colors") {
      n_colors = state::parse_u64_param("params: colors", value);
    } else if (key == "swaps") {
      swaps = state::parse_u64_param("params: swaps", value);
    } else {
      throw ModelError("params: unknown key '" + key +
                       "' (recognized: blob, colors, swaps)");
    }
  }
  if (!blob_set) throw ModelError("params: missing required 'blob=' entry");
  if (blob == 0 || blob > 20000) {
    throw ModelError("params: blob: blob=" + std::to_string(blob) +
                     " outside the supported range [1, 20000]");
  }
  if (n_colors == 0 || n_colors > 16 || n_colors > blob) {
    throw ModelError("params: colors: colors=" + std::to_string(n_colors) +
                     " outside the supported range [1, min(16, blob)]");
  }
  if (swaps > 1) {
    throw ModelError("params: swaps: swaps=" + std::to_string(swaps) +
                     " must be 0 or 1");
  }
  util::Rng rng(t.seed);
  const auto nodes = lattice::random_blob(static_cast<std::size_t>(blob), rng);
  const auto colors = core::balanced_random_colors(
      static_cast<std::size_t>(blob), static_cast<std::size_t>(n_colors),
      rng);
  return make_separation(
      core::SeparationChain(system::ParticleSystem(nodes, colors),
                            core::Params{t.lambda, t.gamma, swaps == 1},
                            t.seed));
}

}  // namespace

std::unique_ptr<ChainModel> make_separation(core::SeparationChain chain,
                                            std::size_t pipeline_block) {
  return std::make_unique<SeparationModel>(std::move(chain), pipeline_block);
}

const core::SeparationChain& separation_chain(const ChainModel& model) {
  const auto* sep = dynamic_cast<const SeparationModel*>(&model);
  if (sep == nullptr) {
    throw ModelError("separation_chain: model is '" + std::string(model.tag()) +
                     "', not separation");
  }
  return sep->chain();
}

std::vector<std::string> encode_separation_state(
    double lambda, double gamma, bool swaps_enabled,
    const util::Rng::State& rng,
    const core::SeparationChain::Counters& counters,
    std::span<const lattice::Node> positions,
    std::span<const system::Color> colors) {
  std::vector<std::string> out;
  out.reserve(4 + positions.size());
  {
    std::string line = "params ";
    state::put_double(line, lambda);
    line += ' ';
    state::put_double(line, gamma);
    line += ' ';
    line += swaps_enabled ? '1' : '0';
    out.push_back(std::move(line));
  }
  {
    std::string line = "rng";
    for (const std::uint64_t w : rng) {
      line += ' ';
      state::put_hex16(line, w);
    }
    out.push_back(std::move(line));
  }
  {
    std::string line = "counters";
    for (const std::uint64_t v :
         {counters.steps, counters.move_proposals, counters.moves_accepted,
          counters.rejected_five, counters.rejected_locality,
          counters.rejected_metropolis, counters.swap_proposals,
          counters.swaps_accepted}) {
      line += ' ';
      state::put_u64(line, v);
    }
    out.push_back(std::move(line));
  }
  {
    std::string line = "particles ";
    state::put_u64(line, positions.size());
    out.push_back(std::move(line));
  }
  for (std::size_t i = 0; i < positions.size(); ++i) {
    std::string line = "p ";
    state::put_i64(line, positions[i].x);
    line += ' ';
    state::put_i64(line, positions[i].y);
    line += ' ';
    state::put_u64(line, colors[i]);
    out.push_back(std::move(line));
  }
  return out;
}

void register_separation_model() {
  Factory factory;
  factory.tag = std::string(kSeparationTag);
  factory.build = build_separation;
  factory.restore = restore_separation;
  register_model(std::move(factory));
}

}  // namespace sops::model
