// Plain-text (de)serialization of configurations: one "x y color" line
// per particle. Used by the harnesses to checkpoint and replay runs.
#pragma once

#include <iosfwd>
#include <string>

#include "src/sops/particle_system.hpp"

namespace sops::system {

void save_configuration(const ParticleSystem& sys, std::ostream& os);
void save_configuration(const ParticleSystem& sys, const std::string& path);

/// Parses a configuration. Throws std::runtime_error on malformed input.
[[nodiscard]] ParticleSystem load_configuration(std::istream& is);
[[nodiscard]] ParticleSystem load_configuration_file(const std::string& path);

}  // namespace sops::system
