// Heterogeneous particle-system configurations (Sections 2.2-2.3).
//
// A configuration is a set of occupied nodes of G_Δ plus an immutable
// color per particle. The class maintains, incrementally under moves and
// swaps, the three quantities the stationary distribution depends on:
// the edge count e(σ), the heterogeneous edge count h(σ), and — through
// the hole-free identity e(σ) = 3n − p(σ) − 3 — the perimeter p(σ).
//
// Mutations are restricted to the two Markov-chain primitives:
// `apply_move` (one particle to an adjacent empty node) and `apply_swap`
// (two adjacent particles exchange positions). Global invariants
// (connectivity, hole-freeness, boundary walk) are verified by the
// functions in invariants.hpp, which intentionally use independent
// algorithms so tests can cross-check the incremental bookkeeping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/lattice/triangular.hpp"
#include "src/util/hash_table.hpp"

namespace sops::system {

/// Particle colors c_1, ..., c_k. The paper analyzes k = 2; the chain
/// implementation supports any k <= kMaxColors (Section 5).
using Color = std::uint8_t;
inline constexpr Color kMaxColors = 8;

/// Index of a particle within a ParticleSystem; stable across moves.
using ParticleIndex = std::int32_t;
inline constexpr ParticleIndex kNoParticle = -1;

/// Single-pass snapshot of the closed 10-node neighborhood of a proposal
/// edge (l, l' = l + dir): the 8-node lattice::EdgeRing plus the two
/// endpoints. This is the raw material of the step kernel
/// (src/core/neighborhood.hpp): every quantity Algorithm 1 needs per
/// step is a popcount or nibble match over these two words.
///
/// Node layout (bit i of `occ`, nibble i of `color_nibbles`):
///   0..7  lattice::EdgeRing::around(l, dir).nodes[0..7]
///         (ring indices 0 and 4 are the common neighbors of l and l')
///   8     l
///   9     l'
/// `color_nibbles` holds the color of node i in bits [4i, 4i+4), with
/// 0xF (an impossible color; kMaxColors = 8) where the node is empty,
/// so a nibble match against any real color also filters occupancy.
struct NeighborhoodGather {
  std::uint16_t occ = 0;
  std::uint64_t color_nibbles = 0xFFFFFFFFFFULL;
  ParticleIndex p_at_l = kNoParticle;
  ParticleIndex p_at_lp = kNoParticle;

  static constexpr int kNodeL = 8;
  static constexpr int kNodeLp = 9;
};

class ParticleSystem {
 public:
  /// Builds a configuration from node positions and per-particle colors.
  /// Throws std::invalid_argument on duplicate nodes, size mismatch, or
  /// out-of-range colors. Does NOT require connectivity (the chain's
  /// invariants are checked separately); edge counts are exact regardless.
  ParticleSystem(std::span<const lattice::Node> positions,
                 std::span<const Color> colors);

  /// Convenience: all particles share color 0 (homogeneous system).
  explicit ParticleSystem(std::span<const lattice::Node> positions);

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] int num_colors() const noexcept { return num_colors_; }

  [[nodiscard]] lattice::Node position(ParticleIndex i) const {
    return positions_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Color color(ParticleIndex i) const {
    return colors_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] bool occupied(lattice::Node v) const noexcept {
    return occupancy_.contains(lattice::pack(v));
  }

  /// The particle at `v`, or kNoParticle.
  [[nodiscard]] ParticleIndex particle_at(lattice::Node v) const noexcept {
    const ParticleIndex* p = occupancy_.find(lattice::pack(v));
    return p ? *p : kNoParticle;
  }

  /// Number of occupied neighbors of `v`, excluding the node `exclude`
  /// if it happens to be adjacent (used for the "as if P were absent"
  /// counts of Algorithm 1). Pass `v` itself as exclude for "no exclude".
  [[nodiscard]] int neighbor_count(lattice::Node v,
                                   lattice::Node exclude) const noexcept;

  /// Same, restricted to neighbors of color `c`.
  [[nodiscard]] int neighbor_count_color(lattice::Node v, Color c,
                                         lattice::Node exclude) const noexcept;

  [[nodiscard]] int neighbor_count(lattice::Node v) const noexcept {
    return neighbor_count(v, v);
  }
  [[nodiscard]] int neighbor_count_color(lattice::Node v,
                                         Color c) const noexcept {
    return neighbor_count_color(v, c, v);
  }

  /// Cache hints for a proposal known ahead of time (the step pipeline's
  /// speculative walk): pull in the occupancy-table probe line for `v`
  /// and the positions-array entry for particle `i`. Pure hints — no
  /// lookup counted, no state touched, safe on stale speculation.
  void prefetch_occupancy(lattice::Node v) const noexcept {
    occupancy_.prefetch(lattice::pack(v));
  }
  void prefetch_position(ParticleIndex i) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&positions_[static_cast<std::size_t>(i)], 0, 1);
#else
    (void)i;
#endif
  }

  /// Reads the closed 10-node neighborhood of the edge (l, l + dir) from
  /// the occupancy table in one pass (exactly 10 probes). The overload
  /// taking `p_at_l` skips the probe for l when the caller already holds
  /// the particle index (the chain always does).
  [[nodiscard]] NeighborhoodGather gather_neighborhood(lattice::Node l,
                                                       int dir) const noexcept;
  [[nodiscard]] NeighborhoodGather gather_neighborhood(
      lattice::Node l, int dir, ParticleIndex p_at_l) const noexcept;

  /// e(σ): number of lattice edges with both endpoints occupied.
  [[nodiscard]] std::int64_t edge_count() const noexcept { return edges_; }
  /// h(σ): number of heterogeneous (bichromatic) edges.
  [[nodiscard]] std::int64_t hetero_edge_count() const noexcept {
    return hetero_edges_;
  }
  /// a(σ) = e(σ) − h(σ): homogeneous edges.
  [[nodiscard]] std::int64_t homo_edge_count() const noexcept {
    return edges_ - hetero_edges_;
  }

  /// p(σ) via the identity e(σ) = 3n − p(σ) − 3. Valid only for connected,
  /// hole-free configurations (Lemma 9's domain); invariants.hpp provides
  /// the independent boundary-walk perimeter for verification.
  [[nodiscard]] std::int64_t perimeter_by_identity() const noexcept {
    return 3 * static_cast<std::int64_t>(size()) - 3 - edges_;
  }

  /// Moves particle `i` to node `to`. Precondition (checked): `to` is
  /// unoccupied and adjacent to the particle's current node.
  void apply_move(ParticleIndex i, lattice::Node to);

  /// Same move, but with caller-supplied e(σ)/h(σ) deltas instead of the
  /// two 6-neighbor recounts (the step kernel already knows both deltas
  /// from its gather). The caller is responsible for their correctness.
  void apply_move(ParticleIndex i, lattice::Node to, std::int64_t edge_delta,
                  std::int64_t hetero_delta);

  /// apply_move with deltas, minus the adjacency/occupancy precondition
  /// probes. For callers whose gather already certified the target empty
  /// and adjacent (the step pipeline reads the proposal edge through its
  /// dense occupancy mirror); produces the identical state as the checked
  /// overload when the preconditions hold.
  void apply_move_unchecked(ParticleIndex i, lattice::Node to,
                            std::int64_t edge_delta,
                            std::int64_t hetero_delta);

  /// Swaps the positions of two adjacent particles.
  void apply_swap(ParticleIndex i, ParticleIndex j);

  /// apply_swap with a caller-supplied h(σ) delta instead of the two
  /// before/after recounts (2 × 2 × 6 occupancy probes). The delta of a
  /// heterogeneous swap is a pure function of the gathered neighborhood:
  /// exactly −NeighborhoodView::swap_exponent(). Same-color swaps are a
  /// configuration no-op (delta ignored), matching the checked overload.
  void apply_swap_unchecked(ParticleIndex i, ParticleIndex j,
                            std::int64_t hetero_delta);

  /// Recolors particle `i` in place (spin/orientation flip for chains
  /// whose colors are mutable internal state rather than immutable
  /// species labels). Positions and e(σ) are untouched; h(σ) is updated
  /// incrementally. Same-color recolors are a no-op.
  void apply_recolor(ParticleIndex i, Color c);

  /// Per-color particle counts.
  [[nodiscard]] std::vector<std::size_t> color_histogram() const;

  /// Snapshot of all positions (index order = particle index order).
  [[nodiscard]] const std::vector<lattice::Node>& positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] const std::vector<Color>& colors() const noexcept {
    return colors_;
  }

  /// Recomputes e(σ) and h(σ) from scratch; used by tests to validate the
  /// incremental bookkeeping.
  void recount_edges() noexcept;

  /// Capacity of the occupancy table. Pre-sized in the constructor to
  /// hold >= 2x the particle count without rehash, and the particle
  /// count never changes, so this value is stable across any trajectory
  /// (asserted by tests).
  [[nodiscard]] std::size_t occupancy_capacity() const noexcept {
    return occupancy_.capacity();
  }

  /// Cumulative occupancy-table lookups (probes); the kernel benchmarks
  /// report the per-step delta.
  [[nodiscard]] std::uint64_t occupancy_lookups() const noexcept {
    return occupancy_.lookups();
  }

 private:
  [[nodiscard]] std::int64_t count_incident_edges(lattice::Node v,
                                                  Color c,
                                                  std::int64_t* hetero) const
      noexcept;

  std::vector<lattice::Node> positions_;
  std::vector<Color> colors_;
  util::FlatMap<ParticleIndex> occupancy_;
  std::int64_t edges_ = 0;
  std::int64_t hetero_edges_ = 0;
  int num_colors_ = 1;
};

}  // namespace sops::system
