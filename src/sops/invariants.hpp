// Global invariant checks for particle-system configurations: BFS
// connectivity, flood-fill hole detection, and the boundary-walk
// perimeter of Section 2.2. These deliberately use algorithms that are
// independent of ParticleSystem's incremental bookkeeping so that tests
// can cross-validate the two (e.g. the identity e(σ) = 3n − p(σ) − 3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/lattice/triangular.hpp"
#include "src/sops/particle_system.hpp"

namespace sops::system {

/// True iff the particles form one connected component in G_Δ.
[[nodiscard]] bool is_connected(const ParticleSystem& sys);

/// True iff some maximal finite connected component of unoccupied nodes
/// exists (a hole, Section 2.2).
[[nodiscard]] bool has_hole(const ParticleSystem& sys);

/// Number of distinct holes and their total node count.
struct HoleStats {
  std::size_t hole_count = 0;
  std::size_t hole_area = 0;
};
[[nodiscard]] HoleStats hole_stats(const ParticleSystem& sys);

/// Perimeter p(σ): the length of the closed boundary walk P that encloses
/// all particles and no unoccupied node. Requires a connected
/// configuration; works whether or not holes are present (holes do not
/// contribute — the walk follows the *outer* boundary). n = 1 gives 0.
[[nodiscard]] std::int64_t perimeter_walk(const ParticleSystem& sys);

/// Generic connectivity test over a plain node set (used by the exact
/// enumeration module).
[[nodiscard]] bool nodes_connected(std::span<const lattice::Node> nodes);

/// Generic hole test over a plain node set.
[[nodiscard]] bool nodes_have_hole(std::span<const lattice::Node> nodes);

/// Minimum possible perimeter for n particles: the p_min(n) used by the
/// α-compression definition. Via the identity p = 3n − 3 − e, minimizing
/// the perimeter maximizes the edge count, whose exact maximum over
/// n-vertex subgraphs of G_Δ is ⌊3n − √(12n − 3)⌋ (Harary–Harborth
/// 1976), giving the closed form p_min(n) = ⌈√(12n − 3)⌉ − 3. Satisfies
/// p_min(n) ≤ 2√3·√n (Lemma 2); tests verify both the bound and that the
/// Lemma 2 construction achieves p_min(n) up to +1 for all small n.
[[nodiscard]] std::int64_t p_min(std::size_t n);

}  // namespace sops::system
