#include "src/sops/particle_system.hpp"

#include <stdexcept>

namespace sops::system {

using lattice::kDegree;
using lattice::Node;

ParticleSystem::ParticleSystem(std::span<const Node> positions,
                               std::span<const Color> colors)
    : positions_(positions.begin(), positions.end()),
      colors_(colors.begin(), colors.end()) {
  if (positions_.size() != colors_.size()) {
    throw std::invalid_argument("ParticleSystem: positions/colors size mismatch");
  }
  if (positions_.empty()) {
    throw std::invalid_argument("ParticleSystem: empty system");
  }
  // Pre-size to >= 2x the particle count: the count is fixed for the
  // lifetime of the system, so no rehash can ever land mid-trajectory.
  occupancy_.reserve(positions_.size() * 2);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (colors_[i] >= kMaxColors) {
      throw std::invalid_argument("ParticleSystem: color out of range");
    }
    num_colors_ = std::max(num_colors_, static_cast<int>(colors_[i]) + 1);
    if (!occupancy_.insert(lattice::pack(positions_[i]),
                           static_cast<ParticleIndex>(i))) {
      throw std::invalid_argument("ParticleSystem: duplicate node");
    }
  }
  recount_edges();
}

ParticleSystem::ParticleSystem(std::span<const Node> positions)
    : ParticleSystem(positions,
                     std::vector<Color>(positions.size(), Color{0})) {}

int ParticleSystem::neighbor_count(Node v, Node exclude) const noexcept {
  int count = 0;
  for (int k = 0; k < kDegree; ++k) {
    const Node u = lattice::neighbor(v, k);
    if (u == exclude) continue;
    if (occupied(u)) ++count;
  }
  return count;
}

int ParticleSystem::neighbor_count_color(Node v, Color c,
                                         Node exclude) const noexcept {
  int count = 0;
  for (int k = 0; k < kDegree; ++k) {
    const Node u = lattice::neighbor(v, k);
    if (u == exclude) continue;
    const ParticleIndex p = particle_at(u);
    if (p != kNoParticle && colors_[static_cast<std::size_t>(p)] == c) ++count;
  }
  return count;
}

NeighborhoodGather ParticleSystem::gather_neighborhood(Node l,
                                                       int dir) const noexcept {
  return gather_neighborhood(l, dir, particle_at(l));
}

NeighborhoodGather ParticleSystem::gather_neighborhood(
    Node l, int dir, ParticleIndex p_at_l) const noexcept {
  const lattice::EdgeRing ring = lattice::EdgeRing::around(l, dir);
  NeighborhoodGather g;
  for (int i = 0; i < 8; ++i) {
    const ParticleIndex p = particle_at(ring.nodes[static_cast<std::size_t>(i)]);
    if (p == kNoParticle) continue;
    g.occ = static_cast<std::uint16_t>(g.occ | (1u << i));
    g.color_nibbles ^= static_cast<std::uint64_t>(
                           colors_[static_cast<std::size_t>(p)] ^ 0xFu)
                       << (4 * i);
  }
  g.p_at_l = p_at_l;
  if (p_at_l != kNoParticle) {
    g.occ = static_cast<std::uint16_t>(g.occ | (1u << NeighborhoodGather::kNodeL));
    g.color_nibbles ^= static_cast<std::uint64_t>(
                           colors_[static_cast<std::size_t>(p_at_l)] ^ 0xFu)
                       << (4 * NeighborhoodGather::kNodeL);
  }
  g.p_at_lp = particle_at(lattice::neighbor(l, dir));
  if (g.p_at_lp != kNoParticle) {
    g.occ = static_cast<std::uint16_t>(g.occ | (1u << NeighborhoodGather::kNodeLp));
    g.color_nibbles ^= static_cast<std::uint64_t>(
                           colors_[static_cast<std::size_t>(g.p_at_lp)] ^ 0xFu)
                       << (4 * NeighborhoodGather::kNodeLp);
  }
  return g;
}

std::int64_t ParticleSystem::count_incident_edges(
    Node v, Color c, std::int64_t* hetero) const noexcept {
  std::int64_t total = 0;
  std::int64_t het = 0;
  for (int k = 0; k < kDegree; ++k) {
    const ParticleIndex p = particle_at(lattice::neighbor(v, k));
    if (p == kNoParticle) continue;
    ++total;
    if (colors_[static_cast<std::size_t>(p)] != c) ++het;
  }
  if (hetero != nullptr) *hetero = het;
  return total;
}

void ParticleSystem::apply_move(ParticleIndex i, Node to) {
  const Node from = position(i);
  if (!lattice::adjacent(from, to)) {
    throw std::invalid_argument("apply_move: target not adjacent");
  }
  if (occupied(to)) {
    throw std::invalid_argument("apply_move: target occupied");
  }
  const Color c = color(i);

  std::int64_t het_old = 0;
  const std::int64_t deg_old = count_incident_edges(from, c, &het_old);

  occupancy_.erase(lattice::pack(from));
  positions_[static_cast<std::size_t>(i)] = to;
  occupancy_.insert(lattice::pack(to), i);

  std::int64_t het_new = 0;
  const std::int64_t deg_new = count_incident_edges(to, c, &het_new);

  edges_ += deg_new - deg_old;
  hetero_edges_ += het_new - het_old;
}

void ParticleSystem::apply_move(ParticleIndex i, Node to,
                                std::int64_t edge_delta,
                                std::int64_t hetero_delta) {
  const Node from = position(i);
  if (!lattice::adjacent(from, to)) {
    throw std::invalid_argument("apply_move: target not adjacent");
  }
  if (occupied(to)) {
    throw std::invalid_argument("apply_move: target occupied");
  }
  occupancy_.erase(lattice::pack(from));
  positions_[static_cast<std::size_t>(i)] = to;
  occupancy_.insert(lattice::pack(to), i);
  edges_ += edge_delta;
  hetero_edges_ += hetero_delta;
}

void ParticleSystem::apply_move_unchecked(ParticleIndex i, Node to,
                                          std::int64_t edge_delta,
                                          std::int64_t hetero_delta) {
  occupancy_.erase(lattice::pack(positions_[static_cast<std::size_t>(i)]));
  positions_[static_cast<std::size_t>(i)] = to;
  occupancy_.insert(lattice::pack(to), i);
  edges_ += edge_delta;
  hetero_edges_ += hetero_delta;
}

void ParticleSystem::apply_swap_unchecked(ParticleIndex i, ParticleIndex j,
                                          std::int64_t hetero_delta) {
  if (colors_[static_cast<std::size_t>(i)] ==
      colors_[static_cast<std::size_t>(j)]) {
    return;  // configuration unchanged, exactly like apply_swap
  }
  const Node a = positions_[static_cast<std::size_t>(i)];
  const Node b = positions_[static_cast<std::size_t>(j)];
  positions_[static_cast<std::size_t>(i)] = b;
  positions_[static_cast<std::size_t>(j)] = a;
  occupancy_.insert(lattice::pack(a), j);
  occupancy_.insert(lattice::pack(b), i);
  hetero_edges_ += hetero_delta;
}

void ParticleSystem::apply_swap(ParticleIndex i, ParticleIndex j) {
  const Node a = position(i);
  const Node b = position(j);
  if (!lattice::adjacent(a, b)) {
    throw std::invalid_argument("apply_swap: particles not adjacent");
  }
  const Color ci = color(i);
  const Color cj = color(j);
  if (ci == cj) return;  // configuration unchanged

  // Heterogeneous-edge delta: recount the edges incident to the two nodes
  // before and after. The (a,b) edge itself stays heterogeneous; edges
  // counted from both endpoints would double-count only (a,b).
  const auto local_hetero = [&]() {
    std::int64_t het = 0;
    std::int64_t dummy_total [[maybe_unused]] = 0;
    std::int64_t h = 0;
    dummy_total = count_incident_edges(a, color(particle_at(a)), &h);
    het += h;
    dummy_total = count_incident_edges(b, color(particle_at(b)), &h);
    het += h;
    return het;  // counts edge (a,b) twice; consistent before/after
  };

  const std::int64_t het_before = local_hetero();

  positions_[static_cast<std::size_t>(i)] = b;
  positions_[static_cast<std::size_t>(j)] = a;
  occupancy_.insert(lattice::pack(a), j);
  occupancy_.insert(lattice::pack(b), i);

  const std::int64_t het_after = local_hetero();
  hetero_edges_ += het_after - het_before;
}

void ParticleSystem::apply_recolor(ParticleIndex i, Color c) {
  if (c >= kMaxColors) {
    throw std::invalid_argument("apply_recolor: color out of range");
  }
  const Color old = color(i);
  if (old == c) return;  // configuration unchanged
  const Node v = position(i);
  std::int64_t het_old = 0;
  std::int64_t het_new = 0;
  (void)count_incident_edges(v, old, &het_old);
  (void)count_incident_edges(v, c, &het_new);
  colors_[static_cast<std::size_t>(i)] = c;
  hetero_edges_ += het_new - het_old;
  if (static_cast<int>(c) + 1 > num_colors_) num_colors_ = c + 1;
}

std::vector<std::size_t> ParticleSystem::color_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(num_colors_), 0);
  for (Color c : colors_) ++hist[c];
  return hist;
}

void ParticleSystem::recount_edges() noexcept {
  std::int64_t edges = 0;
  std::int64_t hetero = 0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    // Count each edge once: from the endpoint with the smaller packed key.
    const Node v = positions_[i];
    for (int k = 0; k < kDegree; ++k) {
      const Node u = lattice::neighbor(v, k);
      if (lattice::pack(u) <= lattice::pack(v)) continue;
      const ParticleIndex p = particle_at(u);
      if (p == kNoParticle) continue;
      ++edges;
      if (colors_[static_cast<std::size_t>(p)] != colors_[i]) ++hetero;
    }
  }
  edges_ = edges;
  hetero_edges_ = hetero;
}

}  // namespace sops::system
