#include "src/sops/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/lattice/shapes.hpp"
#include "src/util/hash_table.hpp"

namespace sops::system {

using lattice::kDegree;
using lattice::Node;

namespace {

/// BFS over occupied nodes starting from `start`; returns visit count.
std::size_t bfs_occupied(const util::FlatSet& occ, Node start) {
  util::FlatSet visited;
  std::vector<Node> queue{start};
  visited.insert(lattice::pack(start));
  std::size_t head = 0;
  while (head < queue.size()) {
    const Node v = queue[head++];
    for (int k = 0; k < kDegree; ++k) {
      const Node u = lattice::neighbor(v, k);
      const std::uint64_t key = lattice::pack(u);
      if (occ.contains(key) && visited.insert(key)) queue.push_back(u);
    }
  }
  return queue.size();
}

util::FlatSet occupancy_set(std::span<const Node> nodes) {
  util::FlatSet occ(nodes.size() * 2);
  for (const Node& v : nodes) occ.insert(lattice::pack(v));
  return occ;
}

struct Box {
  std::int32_t min_x, max_x, min_y, max_y;
};

Box bounding_box(std::span<const Node> nodes) {
  Box b{nodes[0].x, nodes[0].x, nodes[0].y, nodes[0].y};
  for (const Node& v : nodes) {
    b.min_x = std::min(b.min_x, v.x);
    b.max_x = std::max(b.max_x, v.x);
    b.min_y = std::min(b.min_y, v.y);
    b.max_y = std::max(b.max_y, v.y);
  }
  return b;
}

/// Flood-fills unoccupied nodes from the expanded bounding box's corner;
/// returns stats on the unreached unoccupied nodes (the holes).
HoleStats hole_stats_impl(std::span<const Node> nodes) {
  const util::FlatSet occ = occupancy_set(nodes);
  Box b = bounding_box(nodes);
  --b.min_x; ++b.max_x; --b.min_y; ++b.max_y;

  const auto in_box = [&](Node v) {
    return v.x >= b.min_x && v.x <= b.max_x && v.y >= b.min_y && v.y <= b.max_y;
  };

  // Exterior flood fill within the expanded box. The one-node margin ring
  // is entirely unoccupied and 6-connected, so every exterior cell in the
  // box is reached; unreached unoccupied cells belong to holes.
  util::FlatSet reached;
  std::vector<Node> queue{Node{b.min_x, b.min_y}};
  reached.insert(lattice::pack(queue[0]));
  std::size_t head = 0;
  while (head < queue.size()) {
    const Node v = queue[head++];
    for (int k = 0; k < kDegree; ++k) {
      const Node u = lattice::neighbor(v, k);
      if (!in_box(u)) continue;
      const std::uint64_t key = lattice::pack(u);
      if (occ.contains(key) || reached.contains(key)) continue;
      reached.insert(key);
      queue.push_back(u);
    }
  }

  // Group the unreached unoccupied cells into connected components.
  HoleStats stats;
  util::FlatSet seen;
  for (std::int32_t y = b.min_y; y <= b.max_y; ++y) {
    for (std::int32_t x = b.min_x; x <= b.max_x; ++x) {
      const Node v{x, y};
      const std::uint64_t key = lattice::pack(v);
      if (occ.contains(key) || reached.contains(key) || seen.contains(key)) {
        continue;
      }
      // New hole component: BFS it.
      ++stats.hole_count;
      std::vector<Node> hole_queue{v};
      seen.insert(key);
      std::size_t hh = 0;
      while (hh < hole_queue.size()) {
        const Node w = hole_queue[hh++];
        ++stats.hole_area;
        for (int k = 0; k < kDegree; ++k) {
          const Node u = lattice::neighbor(w, k);
          const std::uint64_t ukey = lattice::pack(u);
          if (!in_box(u) || occ.contains(ukey) || reached.contains(ukey) ||
              seen.contains(ukey)) {
            continue;
          }
          seen.insert(ukey);
          hole_queue.push_back(u);
        }
      }
    }
  }
  return stats;
}

std::int64_t perimeter_walk_impl(std::span<const Node> nodes) {
  if (nodes.size() <= 1) return 0;
  const util::FlatSet occ = occupancy_set(nodes);

  // Start node: lexicographically minimal (y, then x) — bottom-most then
  // left-most, so its SW/SE/W neighbors are guaranteed unoccupied.
  Node start = nodes[0];
  for (const Node& v : nodes) {
    if (v.y < start.y || (v.y == start.y && v.x < start.x)) start = v;
  }

  const auto first_occupied_ccw = [&](Node v, int from_dir) -> int {
    for (int offset = 1; offset <= kDegree; ++offset) {
      const int k = lattice::dir_mod(from_dir + offset);
      if (occ.contains(lattice::pack(lattice::neighbor(v, k)))) return k;
    }
    return -1;  // isolated node
  };

  // From the start node, the exterior lies in directions W/SW/SE (3,4,5);
  // scan CCW from direction 5 so the first boundary edge found is the
  // boundary edge leaving `start` with the exterior on its right.
  const int first_dir = first_occupied_ccw(start, 5);
  if (first_dir < 0) {
    throw std::invalid_argument("perimeter_walk: disconnected (isolated node)");
  }

  std::int64_t steps = 0;
  Node v = start;
  int out_dir = first_dir;
  const std::int64_t cap = 6 * static_cast<std::int64_t>(nodes.size()) + 16;
  do {
    const Node u = lattice::neighbor(v, out_dir);
    ++steps;
    if (steps > cap) {
      throw std::logic_error("perimeter_walk: walk failed to close");
    }
    // Arrived at u from v; continue scanning CCW from the back direction.
    const int back = lattice::opposite(out_dir);
    v = u;
    out_dir = first_occupied_ccw(v, back);
  } while (!(v == start && out_dir == first_dir));
  return steps;
}

}  // namespace

bool is_connected(const ParticleSystem& sys) {
  return nodes_connected(sys.positions());
}

bool has_hole(const ParticleSystem& sys) {
  return hole_stats(sys).hole_count > 0;
}

HoleStats hole_stats(const ParticleSystem& sys) {
  return hole_stats_impl(sys.positions());
}

std::int64_t perimeter_walk(const ParticleSystem& sys) {
  return perimeter_walk_impl(sys.positions());
}

bool nodes_connected(std::span<const Node> nodes) {
  if (nodes.empty()) return true;
  const util::FlatSet occ = occupancy_set(nodes);
  return bfs_occupied(occ, nodes[0]) == nodes.size();
}

bool nodes_have_hole(std::span<const Node> nodes) {
  if (nodes.empty()) return false;
  return hole_stats_impl(nodes).hole_count > 0;
}

std::int64_t p_min(std::size_t n) {
  if (n <= 1) return 0;
  // p_min(n) = ceil(sqrt(12n - 3)) - 3; compute the integer ceiling square
  // root exactly to avoid floating-point edge cases at perfect squares.
  const auto target = static_cast<std::int64_t>(12 * n - 3);
  auto root = static_cast<std::int64_t>(std::sqrt(static_cast<double>(target)));
  while (root * root >= target) --root;
  while (root * root < target) ++root;  // now root = ceil(sqrt(target))
  return root - 3;
}

}  // namespace sops::system
