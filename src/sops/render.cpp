#include "src/sops/render.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/ascii_canvas.hpp"

namespace sops::system {

using lattice::Node;

std::string render_ascii(const ParticleSystem& sys) {
  const auto& nodes = sys.positions();
  std::int32_t min_y = nodes[0].y, max_y = nodes[0].y;
  std::int32_t min_c = 2 * nodes[0].x + nodes[0].y;
  std::int32_t max_c = min_c;
  for (const Node& v : nodes) {
    min_y = std::min(min_y, v.y);
    max_y = std::max(max_y, v.y);
    const std::int32_t c = 2 * v.x + v.y;
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  util::AsciiCanvas canvas(static_cast<std::size_t>(max_c - min_c + 1),
                           static_cast<std::size_t>(max_y - min_y + 1), '.');
  static constexpr char kGlyphs[kMaxColors] = {'o', 'x', 'a', 'b',
                                               'c', 'd', 'e', 'f'};
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const Node v = sys.position(static_cast<ParticleIndex>(i));
    canvas.put(2 * v.x + v.y - min_c, max_y - v.y,
               kGlyphs[sys.color(static_cast<ParticleIndex>(i))]);
  }
  return canvas.str();
}

util::Image render_image(const ParticleSystem& sys, double scale) {
  static constexpr util::Rgb kPalette[kMaxColors] = {
      {214, 69, 65},    // red
      {31, 119, 180},   // blue
      {44, 160, 44},    // green
      {255, 159, 28},   // orange
      {148, 103, 189},  // purple
      {23, 190, 207},   // cyan
      {140, 86, 75},    // brown
      {127, 127, 127},  // gray
  };

  double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
  for (const Node& v : sys.positions()) {
    const auto [ex, ey] = lattice::embed(v);
    min_x = std::min(min_x, ex);
    max_x = std::max(max_x, ex);
    min_y = std::min(min_y, ey);
    max_y = std::max(max_y, ey);
  }
  const double margin = 1.5;
  const auto width = static_cast<std::size_t>(
      std::ceil((max_x - min_x + 2 * margin) * scale));
  const auto height = static_cast<std::size_t>(
      std::ceil((max_y - min_y + 2 * margin) * scale));
  util::Image img(std::max<std::size_t>(width, 8),
                  std::max<std::size_t>(height, 8));

  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto idx = static_cast<ParticleIndex>(i);
    const auto [ex, ey] = lattice::embed(sys.position(idx));
    const double px = (ex - min_x + margin) * scale;
    // Flip y so larger lattice y is drawn higher.
    const double py = (max_y - ey + margin) * scale;
    img.fill_disk(px, py, scale * 0.45, kPalette[sys.color(idx)]);
  }
  return img;
}

}  // namespace sops::system
