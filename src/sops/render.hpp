// Rendering of particle-system configurations: ASCII for terminals and
// PPM images mirroring the paper's Figures 2-3 panels.
#pragma once

#include <string>

#include "src/sops/particle_system.hpp"
#include "src/util/ppm.hpp"

namespace sops::system {

/// Terminal rendering. Color 0 prints 'o', color 1 'x', colors 2+ use
/// 'a'..'f'. Rows are offset to suggest the triangular geometry.
[[nodiscard]] std::string render_ascii(const ParticleSystem& sys);

/// Raster rendering with one filled disk per particle on the Euclidean
/// embedding of G_Δ. `scale` is pixels per lattice unit.
[[nodiscard]] util::Image render_image(const ParticleSystem& sys,
                                       double scale = 18.0);

}  // namespace sops::system
