#include "src/sops/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sops::system {

void save_configuration(const ParticleSystem& sys, std::ostream& os) {
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const auto idx = static_cast<ParticleIndex>(i);
    const lattice::Node v = sys.position(idx);
    os << v.x << ' ' << v.y << ' ' << static_cast<int>(sys.color(idx)) << '\n';
  }
}

void save_configuration(const ParticleSystem& sys, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_configuration: cannot open " + path);
  save_configuration(sys, out);
  if (!out) throw std::runtime_error("save_configuration: write failed");
}

ParticleSystem load_configuration(std::istream& is) {
  std::vector<lattice::Node> nodes;
  std::vector<Color> colors;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::int32_t x = 0, y = 0;
    int color = 0;
    if (!(ls >> x >> y >> color) || color < 0 ||
        color >= static_cast<int>(kMaxColors)) {
      throw std::runtime_error("load_configuration: bad line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    nodes.push_back(lattice::Node{x, y});
    colors.push_back(static_cast<Color>(color));
  }
  if (nodes.empty()) {
    throw std::runtime_error("load_configuration: no particles");
  }
  return ParticleSystem(nodes, colors);
}

ParticleSystem load_configuration_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_configuration: cannot open " + path);
  return load_configuration(in);
}

}  // namespace sops::system
