// Open-addressed hash map and set keyed by 64-bit integers.
//
// The particle-system hot path is "is this lattice node occupied, and by
// which particle?" executed tens of millions of times per experiment.
// std::unordered_map's chained buckets are a poor fit, so we provide a
// linear-probing table with backward-shift deletion (no tombstones) and
// power-of-two capacity. Keys are already-packed integers; values are
// small trivially-copyable types.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/rng.hpp"

namespace sops::util {

/// Flat hash map from uint64 keys to trivially-copyable values.
/// Invariants: capacity is a power of two; load factor <= 7/8.
template <typename Value>
class FlatMap {
 public:
  struct Slot {
    std::uint64_t key;
    Value value;
    bool occupied;
  };

  FlatMap() : FlatMap(16) {}

  explicit FlatMap(std::size_t initial_capacity) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.assign(cap, Slot{0, Value{}, false});
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Number of find/contains calls issued so far. The chain benchmarks
  /// report this as probes-per-step; the counter is cheap enough (one
  /// non-atomic increment) to keep unconditionally.
  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }

  /// Grows capacity (never shrinks) so that `count` entries fit without
  /// any further rehash: count <= 7/8 * capacity after the call. A table
  /// reserved for its peak size keeps every slot pointer stable for the
  /// rest of its life — the particle system relies on this so no rehash
  /// ever lands mid-trajectory.
  void reserve(std::size_t count) {
    std::size_t cap = slots_.size();
    while (count + 1 > (cap * 7) / 8) cap <<= 1;
    if (cap != slots_.size()) rehash(cap);
  }

  void clear() noexcept {
    for (auto& s : slots_) s.occupied = false;
    size_ = 0;
  }

  /// Inserts or overwrites. Returns true if the key was newly inserted.
  bool insert(std::uint64_t key, const Value& value) {
    maybe_grow();
    std::size_t i = probe_start(key);
    while (slots_[i].occupied) {
      if (slots_[i].key == key) {
        slots_[i].value = value;
        return false;
      }
      i = next(i);
    }
    slots_[i] = Slot{key, value, true};
    ++size_;
    return true;
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  [[nodiscard]] const Value* find(std::uint64_t key) const noexcept {
    ++lookups_;
    std::size_t i = probe_start(key);
    while (slots_[i].occupied) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = next(i);
    }
    return nullptr;
  }

  [[nodiscard]] Value* find(std::uint64_t key) noexcept {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return find(key) != nullptr;
  }

  /// Hints the cache to load the slot where `key`'s probe sequence
  /// starts. Pure hint for speculative callers (the step pipeline): does
  /// not count as a lookup and never touches table state.
  void prefetch(std::uint64_t key) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[probe_start(key)], /*rw=*/0, /*locality=*/1);
#else
    (void)key;
#endif
  }

  /// Erases `key` if present using backward-shift deletion, preserving
  /// probe-sequence integrity without tombstones. Returns true if erased.
  bool erase(std::uint64_t key) noexcept {
    std::size_t i = probe_start(key);
    while (slots_[i].occupied) {
      if (slots_[i].key == key) {
        backward_shift(i);
        --size_;
        return true;
      }
      i = next(i);
    }
    return false;
  }

  /// Calls `fn(key, value)` for each entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_) {
      if (s.occupied) fn(s.key, s.value);
    }
  }

 private:
  [[nodiscard]] std::size_t mask() const noexcept { return slots_.size() - 1; }
  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix64(key)) & mask();
  }
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) & mask();
  }

  void maybe_grow() {
    if (size_ + 1 <= (slots_.size() * 7) / 8) return;
    rehash(slots_.size() * 2);
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{0, Value{}, false});
    size_ = 0;
    for (const auto& s : old) {
      if (s.occupied) insert(s.key, s.value);
    }
  }

  void backward_shift(std::size_t hole) noexcept {
    std::size_t i = next(hole);
    while (slots_[i].occupied) {
      // An entry may move back into the hole only if its ideal position
      // does not lie strictly inside the (hole, i] probe gap.
      const std::size_t ideal = probe_start(slots_[i].key);
      const std::size_t dist_ideal_to_i = (i - ideal) & mask();
      const std::size_t dist_hole_to_i = (i - hole) & mask();
      if (dist_ideal_to_i >= dist_hole_to_i) {
        slots_[hole] = slots_[i];
        hole = i;
      }
      i = next(i);
    }
    slots_[hole].occupied = false;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  mutable std::uint64_t lookups_ = 0;
};

/// Flat hash set of uint64 keys, built on FlatMap with an empty payload.
class FlatSet {
 public:
  FlatSet() = default;
  explicit FlatSet(std::size_t initial_capacity) : map_(initial_capacity) {}

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  void clear() noexcept { map_.clear(); }
  void reserve(std::size_t count) { map_.reserve(count); }
  bool insert(std::uint64_t key) { return map_.insert(key, Unit{}); }
  bool erase(std::uint64_t key) noexcept { return map_.erase(key); }
  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return map_.contains(key);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&](std::uint64_t k, const Unit&) { fn(k); });
  }

 private:
  struct Unit {};
  FlatMap<Unit> map_;
};

}  // namespace sops::util
