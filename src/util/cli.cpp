#include "src/util/cli.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace sops::util {

namespace {

[[noreturn]] void fail(std::string_view msg, std::string_view arg) {
  std::ostringstream os;
  os << "cli: " << msg << ": '" << arg << "'";
  throw std::invalid_argument(os.str());
}

}  // namespace

void Cli::add_flag(std::string name, std::string help) {
  specs_[name] = Spec{std::move(help), /*is_flag=*/true, ""};
  flags_[std::move(name)] = false;
}

void Cli::add_option(std::string name, std::string help,
                     std::string default_value) {
  values_[name] = default_value;
  specs_[std::move(name)] =
      Spec{std::move(help), /*is_flag=*/false, std::move(default_value)};
}

void Cli::set_passthrough_prefix(std::string prefix) {
  passthrough_prefix_ = std::move(prefix);
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (!passthrough_prefix_.empty() && arg.starts_with(passthrough_prefix_)) {
      // Library flags are --name=value single tokens; keep them verbatim.
      passthrough_.emplace_back(arg);
      continue;
    }
    if (!arg.starts_with("--")) fail("expected --option", arg);
    arg.remove_prefix(2);

    std::string name;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      inline_value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }

    const auto it = specs_.find(name);
    if (it == specs_.end()) fail("unknown option", name);

    if (it->second.is_flag) {
      if (inline_value) fail("flag does not take a value", name);
      flags_[name] = true;
    } else if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= argc) fail("option requires a value", name);
      values_[name] = argv[++i];
    }
  }
}

std::string Cli::help_text(std::string_view program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << " <value> (default: " << spec.default_value << ")";
    os << "\n      " << spec.help << "\n";
  }
  return os.str();
}

const Cli::Spec& Cli::spec_or_throw(std::string_view name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) fail("option was never declared", name);
  return it->second;
}

bool Cli::flag(std::string_view name) const {
  if (!spec_or_throw(name).is_flag) fail("not a flag", name);
  return flags_.find(name)->second;
}

std::string Cli::str(std::string_view name) const {
  if (spec_or_throw(name).is_flag) fail("is a flag, not an option", name);
  return values_.find(name)->second;
}

std::int64_t Cli::integer(std::string_view name) const {
  const std::string v = str(name);
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    fail("expected integer value", name);
  }
  return out;
}

std::uint64_t Cli::unsigned_integer(std::string_view name) const {
  const std::string v = str(name);
  // from_chars already rejects a leading '-' for unsigned targets; an
  // explicit '+' must be rejected too since from_chars never accepts it.
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (v.empty() || ec != std::errc{} || ptr != v.data() + v.size()) {
    fail("expected unsigned integer value", name);
  }
  return out;
}

namespace {

/// Strict uint64 parse of one half of a composite value ("a:b", "k/n").
std::uint64_t parse_u64_or(std::string_view text, std::string_view name) {
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (text.empty() || ec != std::errc{} || ptr != text.data() + text.size()) {
    fail("expected unsigned integer component", name);
  }
  return out;
}

}  // namespace

std::pair<std::uint64_t, std::uint64_t> Cli::index_range(
    std::string_view name) const {
  const std::string v = str(name);
  const auto colon = v.find(':');
  if (colon == std::string::npos) fail("expected 'a:b' range", name);
  const std::uint64_t begin =
      parse_u64_or(std::string_view(v).substr(0, colon), name);
  const std::uint64_t end =
      parse_u64_or(std::string_view(v).substr(colon + 1), name);
  if (end <= begin) fail("empty range (need a < b in 'a:b')", name);
  return {begin, end};
}

std::pair<std::uint64_t, std::uint64_t> Cli::shard_of(
    std::string_view name) const {
  const std::string v = str(name);
  const auto slash = v.find('/');
  if (slash == std::string::npos) fail("expected 'k/n' shard", name);
  const std::uint64_t k =
      parse_u64_or(std::string_view(v).substr(0, slash), name);
  const std::uint64_t n =
      parse_u64_or(std::string_view(v).substr(slash + 1), name);
  if (n == 0) fail("shard count must be positive", name);
  if (k >= n) fail("shard index must satisfy k < n in 'k/n'", name);
  return {k, n};
}

double Cli::real(std::string_view name) const {
  const std::string v = str(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) fail("expected real value", name);
    return out;
  } catch (const std::logic_error&) {
    fail("expected real value", name);
  }
}

}  // namespace sops::util
