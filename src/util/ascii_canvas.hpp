// Character-cell canvas for terminal rendering of lattice configurations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sops::util {

/// A width x height grid of characters, origin at top-left. Out-of-range
/// writes are ignored so callers can draw without pre-clipping.
class AsciiCanvas {
 public:
  AsciiCanvas(std::size_t width, std::size_t height, char fill = ' ');

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }

  void put(std::ptrdiff_t x, std::ptrdiff_t y, char c) noexcept;
  void text(std::ptrdiff_t x, std::ptrdiff_t y, const std::string& s) noexcept;
  [[nodiscard]] char at(std::size_t x, std::size_t y) const;

  /// Joins rows with newlines; trailing spaces on each row are trimmed.
  [[nodiscard]] std::string str() const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<char> cells_;
};

}  // namespace sops::util
