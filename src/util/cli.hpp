// Minimal command-line parser for the example and bench harnesses.
//
// Supports `--flag`, `--key value`, and `--key=value` forms. Unknown
// arguments raise an error so typos in experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sops::util {

class Cli {
 public:
  /// Declares an option with a help string and optional default.
  /// Declaration must precede parse().
  void add_flag(std::string name, std::string help);
  void add_option(std::string name, std::string help,
                  std::string default_value);

  /// Arguments starting with `prefix` (e.g. "--benchmark_") are collected
  /// verbatim into passthrough() instead of being parsed, so a harness can
  /// forward an embedded library's flag namespace without declaring every
  /// flag. Must be set before parse().
  void set_passthrough_prefix(std::string prefix);
  [[nodiscard]] const std::vector<std::string>& passthrough() const noexcept {
    return passthrough_;
  }

  /// Parses argv. Throws std::invalid_argument on unknown or malformed
  /// arguments. Recognizes --help and sets help_requested().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] std::string help_text(std::string_view program) const;

  [[nodiscard]] bool flag(std::string_view name) const;
  [[nodiscard]] std::string str(std::string_view name) const;
  [[nodiscard]] std::int64_t integer(std::string_view name) const;
  /// Strict unsigned parse: rejects signs, garbage, trailing junk, and
  /// values above uint64 range — sweep typos like `--threads 8x` or
  /// `--threads -2` fail loudly instead of truncating.
  [[nodiscard]] std::uint64_t unsigned_integer(std::string_view name) const;
  [[nodiscard]] double real(std::string_view name) const;
  /// Parses "a:b" as the half-open index range [a, b). Same fail-fast
  /// style as unsigned_integer: rejects empty ranges (b <= a), missing
  /// halves, signs, and trailing garbage.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> index_range(
      std::string_view name) const;
  /// Parses "k/n" as shard k of n. Rejects n == 0, k >= n, signs, and
  /// trailing garbage, so a mistyped `--shard 3/3` fails before any work.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> shard_of(
      std::string_view name) const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string default_value;
  };

  const Spec& spec_or_throw(std::string_view name) const;

  std::map<std::string, Spec, std::less<>> specs_;
  std::map<std::string, std::string, std::less<>> values_;
  std::map<std::string, bool, std::less<>> flags_;
  std::string passthrough_prefix_;
  std::vector<std::string> passthrough_;
  bool help_ = false;
};

}  // namespace sops::util
