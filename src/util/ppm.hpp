// Minimal PPM (P6) image writer for rendering particle configurations to
// disk without any image-library dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sops::util {

struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend bool operator==(const Rgb&, const Rgb&) = default;
};

/// RGB raster, origin at top-left.
class Image {
 public:
  Image(std::size_t width, std::size_t height, Rgb fill = {255, 255, 255});

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }

  /// Out-of-range writes are ignored.
  void set(std::ptrdiff_t x, std::ptrdiff_t y, Rgb c) noexcept;
  [[nodiscard]] Rgb get(std::size_t x, std::size_t y) const;

  /// Filled disk; used to draw particles.
  void fill_disk(double cx, double cy, double radius, Rgb c) noexcept;

  /// Writes binary PPM (P6). Throws std::runtime_error on I/O failure.
  void save_ppm(const std::string& path) const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<Rgb> pixels_;
};

}  // namespace sops::util
