#include "src/util/ascii_canvas.hpp"

#include <stdexcept>

namespace sops::util {

AsciiCanvas::AsciiCanvas(std::size_t width, std::size_t height, char fill)
    : width_(width), height_(height), cells_(width * height, fill) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("AsciiCanvas: zero dimension");
  }
}

void AsciiCanvas::put(std::ptrdiff_t x, std::ptrdiff_t y, char c) noexcept {
  if (x < 0 || y < 0 || static_cast<std::size_t>(x) >= width_ ||
      static_cast<std::size_t>(y) >= height_) {
    return;
  }
  cells_[static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)] = c;
}

void AsciiCanvas::text(std::ptrdiff_t x, std::ptrdiff_t y,
                       const std::string& s) noexcept {
  for (std::size_t i = 0; i < s.size(); ++i) {
    put(x + static_cast<std::ptrdiff_t>(i), y, s[i]);
  }
}

char AsciiCanvas::at(std::size_t x, std::size_t y) const {
  if (x >= width_ || y >= height_) {
    throw std::out_of_range("AsciiCanvas::at");
  }
  return cells_[y * width_ + x];
}

std::string AsciiCanvas::str() const {
  std::string out;
  out.reserve((width_ + 1) * height_);
  for (std::size_t y = 0; y < height_; ++y) {
    std::size_t end = width_;
    while (end > 0 && cells_[y * width_ + end - 1] == ' ') --end;
    out.append(&cells_[y * width_], end);
    out.push_back('\n');
  }
  return out;
}

}  // namespace sops::util
