#include "src/util/rng.hpp"

namespace sops::util {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream index into the seed first so (seed, 0) and (seed, 1)
  // share no state, then expand with splitmix64 per the xoshiro authors'
  // recommendation. A degenerate all-zero state is impossible because
  // splitmix64 is a bijection sequence and we draw four distinct outputs.
  SplitMix64 sm(seed ^ mix64(stream + 0x7f4a7c15ULL));
  s_[0] = sm.next();
  s_[1] = sm.next();
  s_[2] = sm.next();
  s_[3] = sm.next();
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;  // unreachable guard
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  return lemire_below([this] { return next(); }, bound);
}

void Rng::fill(std::uint64_t* out, std::size_t count) noexcept {
  // Hoist the state into locals so the compiler keeps it in registers
  // across the loop; the loop body is the exact next() update, so the
  // emitted words and the post-loop state match `count` next() calls.
  std::uint64_t s0 = s_[0];
  std::uint64_t s1 = s_[1];
  std::uint64_t s2 = s_[2];
  std::uint64_t s3 = s_[3];
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = rotl(s0 + s3, 23) + s0;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace sops::util
