#include "src/util/rng.hpp"

namespace sops::util {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream index into the seed first so (seed, 0) and (seed, 1)
  // share no state, then expand with splitmix64 per the xoshiro authors'
  // recommendation. A degenerate all-zero state is impossible because
  // splitmix64 is a bijection sequence and we draw four distinct outputs.
  SplitMix64 sm(seed ^ mix64(stream + 0x7f4a7c15ULL));
  s_[0] = sm.next();
  s_[1] = sm.next();
  s_[2] = sm.next();
  s_[3] = sm.next();
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;  // unreachable guard
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  return lemire_below([this] { return next(); }, bound);
}

}  // namespace sops::util
