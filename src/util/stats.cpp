#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sops::util {

void Accumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::sem() const noexcept {
  if (n_ < 2) return 0.0;
  return std::sqrt(variance() / static_cast<double>(n_));
}

double quantile(std::span<const double> sample, double q) {
  if (sample.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double total_variation(const std::map<std::string, double>& p,
                       const std::map<std::string, double>& q) {
  double sum = 0.0;
  for (const auto& [k, pv] : p) {
    const auto it = q.find(k);
    const double qv = (it == q.end()) ? 0.0 : it->second;
    sum += std::abs(pv - qv);
  }
  for (const auto& [k, qv] : q) {
    if (!p.contains(k)) sum += qv;
  }
  return sum / 2.0;
}

std::map<std::string, double> normalize(
    const std::map<std::string, std::size_t>& counts) {
  std::size_t total = 0;
  for (const auto& [k, c] : counts) total += c;
  std::map<std::string, double> out;
  if (total == 0) return out;
  for (const auto& [k, c] : counts) {
    out[k] = static_cast<double>(c) / static_cast<double>(total);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = (counts_[i] * max_width) / peak;
    os << "[" << bucket_low(i) << ", " << bucket_low(i + 1) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

double wilson_halfwidth(std::size_t k, std::size_t n) {
  if (n == 0) return 1.0;
  constexpr double z = 1.96;
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(k) / nn;
  const double denom = 1.0 + z * z / nn;
  const double half =
      (z / denom) * std::sqrt(phat * (1.0 - phat) / nn + z * z / (4.0 * nn * nn));
  return half;
}

}  // namespace sops::util
