#include "src/util/ppm.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

namespace sops::util {

Image::Image(std::size_t width, std::size_t height, Rgb fill)
    : width_(width), height_(height), pixels_(width * height, fill) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Image: zero dimension");
  }
}

void Image::set(std::ptrdiff_t x, std::ptrdiff_t y, Rgb c) noexcept {
  if (x < 0 || y < 0 || static_cast<std::size_t>(x) >= width_ ||
      static_cast<std::size_t>(y) >= height_) {
    return;
  }
  pixels_[static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)] = c;
}

Rgb Image::get(std::size_t x, std::size_t y) const {
  if (x >= width_ || y >= height_) throw std::out_of_range("Image::get");
  return pixels_[y * width_ + x];
}

void Image::fill_disk(double cx, double cy, double radius, Rgb c) noexcept {
  const auto x0 = static_cast<std::ptrdiff_t>(std::floor(cx - radius));
  const auto x1 = static_cast<std::ptrdiff_t>(std::ceil(cx + radius));
  const auto y0 = static_cast<std::ptrdiff_t>(std::floor(cy - radius));
  const auto y1 = static_cast<std::ptrdiff_t>(std::ceil(cy + radius));
  const double r2 = radius * radius;
  for (std::ptrdiff_t y = y0; y <= y1; ++y) {
    for (std::ptrdiff_t x = x0; x <= x1; ++x) {
      const double dx = static_cast<double>(x) + 0.5 - cx;
      const double dy = static_cast<double>(y) + 0.5 - cy;
      if (dx * dx + dy * dy <= r2) set(x, y, c);
    }
  }
}

void Image::save_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Image: cannot open " + path);
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (const Rgb& p : pixels_) {
    out.put(static_cast<char>(p.r));
    out.put(static_cast<char>(p.g));
    out.put(static_cast<char>(p.b));
  }
  if (!out) throw std::runtime_error("Image: write failed for " + path);
}

}  // namespace sops::util
