// Pseudorandom number generation for reproducible Monte-Carlo experiments.
//
// We implement xoshiro256++ (Blackman & Vigna, 2019) seeded through
// splitmix64, rather than relying on std::mt19937, for three reasons:
// (1) deterministic cross-platform streams given a 64-bit seed, (2) cheap
// jump-free substreams via re-seeding with a stream index, and (3) state
// small enough to embed one generator per experiment without care.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace sops::util {

/// splitmix64: a tiny, high-quality 64-bit mixer. Used to expand a user
/// seed into the 256-bit xoshiro state; also usable as a standalone hash.
struct SplitMix64 {
  std::uint64_t state = 0;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Stateless splitmix64 finalizer: a strong 64-bit bit mixer. This is the
/// hash function used by the open-addressed containers in hash_table.hpp.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Lemire's multiply-shift bounded draw (2019, "Fast Random Integer
/// Generation in an Interval") over an arbitrary source of raw 64-bit
/// words. `next` is invoked once, plus once per rejection, so the word
/// consumption order is fully determined by (word values, bound). This
/// is the single definition of the decode: Rng::below wraps it around
/// the live generator, and the step pipeline wraps it around a
/// pre-refilled block of raw outputs — guaranteeing both consume the
/// identical underlying sequence.
template <typename Next>
[[nodiscard]] std::uint64_t lemire_below(Next&& next,
                                         std::uint64_t bound) noexcept {
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// The (0, 1) double Rng::uniform_open decodes from one raw word.
[[nodiscard]] constexpr double decode_uniform_open(std::uint64_t raw) noexcept {
  return (static_cast<double>(raw >> 11) + 0.5) * 0x1.0p-53;
}

/// xoshiro256++ generator. Satisfies the UniformRandomBitGenerator
/// concept so it can also be plugged into <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from `seed` via splitmix64. A `stream`
  /// index derives statistically independent substreams from one seed.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL,
               std::uint64_t stream = 0) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniform bits.
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Writes the next `count` raw outputs into `out` — exactly the words
  /// `count` successive next() calls would return, leaving the generator
  /// in the identical post-state. The bulk refill behind the batched
  /// step pipeline and the replica band engine: the state lives in
  /// registers for the whole loop instead of round-tripping through
  /// memory once per word.
  void fill(std::uint64_t* out, std::size_t count) noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1): never returns 0, suitable for Metropolis
  /// draws `q` where Algorithm 1 requires q strictly inside (0, 1).
  double uniform_open() noexcept { return decode_uniform_open(next()); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift method
  /// with rejection, so the result is exactly uniform.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli(p) draw.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// The raw 256-bit generator state, exported for checkpoint/resume
  /// (src/checkpoint). Restoring a saved State with set_state() makes
  /// the generator continue the exact word stream it would have produced
  /// uninterrupted — including through lemire_below rejection redraws,
  /// which consume words from this same stream (pinned by tests).
  using State = std::array<std::uint64_t, 4>;

  [[nodiscard]] State state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  /// Precondition: `s` came from state() (in particular it is not the
  /// degenerate all-zero state, which the seeding path cannot produce).
  void set_state(const State& s) noexcept {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace sops::util
