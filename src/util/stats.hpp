// Streaming statistics and distribution-comparison helpers used by the
// experiment harnesses and property tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace sops::util {

/// Welford online accumulator for mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Standard error of the mean (0 for fewer than two samples).
  [[nodiscard]] double sem() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact quantile of a sample (copies and sorts; fine for harness sizes).
/// `q` in [0, 1]; linear interpolation between order statistics.
[[nodiscard]] double quantile(std::span<const double> sample, double q);

/// Total-variation distance between two discrete distributions given as
/// key->probability maps. Missing keys are treated as probability zero.
[[nodiscard]] double total_variation(const std::map<std::string, double>& p,
                                     const std::map<std::string, double>& q);

/// Normalizes a key->count map into a key->probability map.
[[nodiscard]] std::map<std::string, double> normalize(
    const std::map<std::string, std::size_t>& counts);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::span<const std::size_t> buckets() const noexcept {
    return counts_;
  }
  [[nodiscard]] double bucket_low(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }
  /// Renders a compact ASCII bar chart, one line per bucket.
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Two-sided binomial (Wilson) confidence half-width for a frequency
/// estimate k/n at ~95% confidence. Used when reporting w.h.p. events.
[[nodiscard]] double wilson_halfwidth(std::size_t k, std::size_t n);

}  // namespace sops::util
