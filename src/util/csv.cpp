#include "src/util/csv.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sops::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(header_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  if (cells_.empty()) throw std::logic_error("Table: add() before row()");
  if (cells_.back().size() >= header_.size()) {
    throw std::logic_error("Table: row has more cells than header columns");
  }
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }

namespace {

void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    write_csv_cell(os, header_[i]);
  }
  os << '\n';
  for (const auto& row : cells_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      write_csv_cell(os, row[i]);
    }
    os << '\n';
  }
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : cells_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = (i < row.size()) ? row[i] : std::string{};
      os << "  " << std::left << std::setw(static_cast<int>(widths[i])) << cell;
    }
    os << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (auto w : widths) rule.emplace_back(w, '-');
  emit(rule);
  for (const auto& row : cells_) emit(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table: cannot open " + path);
  write_csv(out);
  if (!out) throw std::runtime_error("Table: write failed for " + path);
}

}  // namespace sops::util
