// Tabular output for experiment harnesses: CSV files plus aligned
// plain-text tables mirroring the rows a paper table/figure reports.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sops::util {

/// In-memory table with a header row. Cells are strings; numeric helpers
/// format with stable precision so CSV outputs are diffable run-to-run.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 6);
  Table& add(std::int64_t value);
  Table& add(std::size_t value);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::string>& row_cells(std::size_t i) const {
    return cells_.at(i);
  }

  /// Writes RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;
  /// Writes an aligned, human-readable table.
  void write_pretty(std::ostream& os) const;
  /// Convenience: write_csv to the named file; throws on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace sops::util
