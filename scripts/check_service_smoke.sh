#!/usr/bin/env bash
# Service-layer smoke check: start the sweep server, submit a real
# harness job over the socket, and require the served report to be
# byte-identical to the batch harness at --threads 1. Also exercises
# the job-lifecycle surface (ping, cancel, bounded-queue overload
# refusal, job-tagged telemetry, clean shutdown with a stats line), a
# short load-generator run (which itself fails on any protocol error),
# and the exit-code contract shared with the rest of the tools: usage
# errors exit 2, data/protocol errors exit 1.
#
# Usage: scripts/check_service_smoke.sh [build-dir] [harness]
#   build-dir  CMake build tree holding bench/ binaries (default: build)
#   harness    shardable harness to submit (default: bench_fig3_phase_diagram)
set -euo pipefail

build_dir=${1:-build}
harness=${2:-bench_fig3_phase_diagram}

bin="$build_dir/bench/$harness"
server_bin="$build_dir/bench/sops_sweep_server"
client_bin="$build_dir/bench/sops_load_client"
for b in "$bin" "$server_bin" "$client_bin"; do
  [[ -x $b ]] || { echo "error: $b not built" >&2; exit 1; }
done

work=$(mktemp -d "${TMPDIR:-/tmp}/service_smoke.XXXXXX")
server_pid=
cleanup() {
  [[ -n $server_pid ]] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT
sock="$work/sweep.sock"

# Runs "$@" expecting exit code $1, with stderr kept in $work/err.txt.
expect_rc() {
  local want=$1
  shift
  local rc=0
  "$@" >/dev/null 2>"$work/err.txt" || rc=$?
  if [[ $rc -ne $want ]]; then
    echo "FAIL: '$*' exited $rc, expected $want" >&2
    cat "$work/err.txt" >&2
    exit 1
  fi
}

echo "== start server (--queue 1 so the overload refusal is reachable)"
"$server_bin" --socket "$sock" --threads 1 --queue 1 \
  --telemetry "$work/telemetry.jsonl" >"$work/server.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  grep -q "^listening on " "$work/server.log" 2>/dev/null && break
  kill -0 "$server_pid" 2>/dev/null || {
    echo "FAIL: server exited during startup" >&2
    cat "$work/server.log" >&2
    exit 1
  }
  sleep 0.1
done
"$client_bin" --socket "$sock" --mode ping | grep -q pong
echo "ok: server up, ping answered"

echo "== submitted report must be byte-identical to the batch harness"
"$bin" --threads 1 >"$work/reference.txt"
"$bin" --submit "$sock" >"$work/submitted.txt"
if ! diff -u "$work/reference.txt" "$work/submitted.txt"; then
  echo "FAIL: socket-submitted report differs from the batch run" >&2
  exit 1
fi
echo "ok: socket-submitted report byte-identical to batch --threads 1"

echo "== cancel: a long job reaches the cancelled terminal state"
"$client_bin" --socket "$sock" --mode cancel
echo "ok: cancel observed"

echo "== overload: the bounded queue refuses, never buffers"
"$client_bin" --socket "$sock" --mode overload
echo "ok: queue-full refusal observed"

echo "== short load run (exit 1 on any protocol error)"
"$client_bin" --socket "$sock" --mode load \
  --workers 4 --jobs 60 --tasks 2 --blob 16 --iters 500
echo "ok: load run clean"

echo "== telemetry records are job-tagged"
grep -q '"job":"j' "$work/telemetry.jsonl" || {
  echo "FAIL: no job-tagged records in telemetry stream" >&2
  exit 1
}
echo "ok: job-tagged telemetry present"

echo "== usage errors must exit 2"
expect_rc 2 "$server_bin" --no-such-flag
expect_rc 2 "$server_bin"                            # --socket required
expect_rc 2 "$server_bin" --socket "$sock" --queue 0
expect_rc 2 "$client_bin" --no-such-flag
expect_rc 2 "$client_bin"                            # --socket required
expect_rc 2 "$client_bin" --socket "$sock" --mode bogus
expect_rc 2 "$bin" --submit "$sock" --shard 0/2 --shard-out "$work/x.shard"
expect_rc 2 "$bin" --submit "$sock" --merge "$work/x.shard"
echo "ok: usage errors exit 2"

echo "== data/protocol errors must exit 1 and name the problem"
expect_rc 1 "$client_bin" --socket "$work/absent.sock" --mode ping
grep -q "absent.sock" "$work/err.txt" || {
  echo "FAIL: connect failure did not name the socket path" >&2
  cat "$work/err.txt" >&2
  exit 1
}
expect_rc 1 "$bin" --submit "$work/absent.sock"
long_path="$work/$(printf 'a%.0s' $(seq 1 200))"
expect_rc 1 "$server_bin" --socket "$long_path"
grep -q "too long" "$work/err.txt" || {
  echo "FAIL: over-long socket path not named" >&2
  cat "$work/err.txt" >&2
  exit 1
}
echo "ok: data errors exit 1 with the offending field named"

echo "== clean shutdown over the wire"
"$client_bin" --socket "$sock" --mode shutdown
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "FAIL: server still running after shutdown frame" >&2
  exit 1
fi
server_pid=
grep -q "^shutdown: " "$work/server.log" || {
  echo "FAIL: server did not print its shutdown stats line" >&2
  cat "$work/server.log" >&2
  exit 1
}
echo "ok: server drained and printed lifetime stats"

echo "PASS: service smoke ($harness over $sock)"
