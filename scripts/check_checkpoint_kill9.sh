#!/usr/bin/env bash
# Checkpoint/recovery smoke check: the full crash story, end to end.
#
# Phase A — kill -9 and resume:
#   run a harness unsharded for the golden report, then start worker 1/2
#   with periodic checkpointing, kill -9 it the moment its first
#   mid-task snapshot lands, resume it to completion, run worker 0/2
#   normally, merge, and require the merged report to be byte-identical
#   (cmp) to the golden uninterrupted run. Also proves the canonical
#   merged artifact is unchanged by the crash/resume detour.
#
# Phase B — elastic recovery of a lost worker:
#   consolidate only worker 0's file with sops_shard_merge --elastic,
#   require the gap report to name exactly worker 1's task range and
#   emit a matching re-plan, run just that re-planned range, merge the
#   recovered set, and require the report to match the golden bytes.
#
# Usage: scripts/check_checkpoint_kill9.sh [build-dir] [harness]
#   build-dir  CMake build tree holding bench/ binaries (default: build)
#   harness    chain-backed sharded harness (default:
#              bench_thm13_compression — the longest chains in the suite)
set -euo pipefail

build_dir=${1:-build}
harness=${2:-bench_thm13_compression}
every=${SOPS_CHECKPOINT_EVERY:-50000}

bin="$build_dir/bench/$harness"
merge_bin="$build_dir/bench/sops_shard_merge"
[[ -x $bin ]] || { echo "error: $bin not built" >&2; exit 1; }
[[ -x $merge_bin ]] || { echo "error: $merge_bin not built" >&2; exit 1; }

work=$(mktemp -d "${TMPDIR:-/tmp}/ckpt_kill9.XXXXXX")
trap 'rm -rf "$work"' EXIT
mkdir "$work/parts"

echo "== golden reference ($harness, uninterrupted, unsharded)"
"$bin" >"$work/golden.txt"

# ---- Phase A: kill -9 a checkpointing worker mid-task, resume it ------

# The kill must land while the worker is still running, else the check
# proves nothing; retry with a fresh snapshot dir if the worker wins the
# race (it never should — the first snapshot lands milliseconds in,
# with most of the trajectory still ahead).
killed=0
for attempt in 1 2 3; do
  ckdir="$work/snap$attempt"
  echo "== start worker 1/2 (--checkpoint-every $every), attempt $attempt"
  "$bin" --shard 1/2 --shard-out "$work/parts/w1.shard" --threads 1 \
    --checkpoint-dir "$ckdir" --checkpoint-every "$every" \
    >/dev/null 2>&1 &
  victim=$!
  while kill -0 "$victim" 2>/dev/null; do
    if compgen -G "$ckdir/*.sopsckpt" >/dev/null; then
      kill -9 "$victim" 2>/dev/null || true
      break
    fi
  done
  rc=0
  wait "$victim" || rc=$?
  if [[ $rc -eq 137 ]]; then
    killed=1
    break
  fi
  echo "note: worker exited (rc=$rc) before the kill landed; retrying"
  rm -f "$work/parts/w1.shard"
done
[[ $killed -eq 1 ]] || {
  echo "FAIL: could not kill the worker mid-task in 3 attempts" >&2
  exit 1
}
[[ ! -s $work/parts/w1.shard ]] || {
  echo "FAIL: killed worker still produced a shard file" >&2
  exit 1
}
echo "ok: worker killed by SIGKILL with $(ls "$ckdir" | wc -l) snapshot(s)"

echo "== resume worker 1/2 from its snapshots"
"$bin" --shard 1/2 --shard-out "$work/parts/w1.shard" --threads 1 \
  --checkpoint-dir "$ckdir" --checkpoint-every "$every" --resume \
  >/dev/null 2>"$work/resume_err.txt"
grep -q "resumed" "$work/resume_err.txt" || {
  echo "FAIL: resume run did not report resumed tasks:" >&2
  cat "$work/resume_err.txt" >&2
  exit 1
}

echo "== worker 0/2 (uninterrupted)"
"$bin" --shard 0/2 --shard-out "$work/parts/w0.shard" --threads 1 \
  >/dev/null

echo "== merge and compare against the golden report"
"$bin" --merge-dir "$work/parts" >"$work/merged.txt"
cmp "$work/golden.txt" "$work/merged.txt"
echo "ok: post-crash merged report byte-identical to uninterrupted run"

echo "== canonical artifact is unchanged by the crash/resume detour"
"$merge_bin" --merge-dir "$work/parts" --out "$work/all.sopsshard"
"$bin" --merge "$work/all.sopsshard" >"$work/from_artifact.txt"
cmp "$work/golden.txt" "$work/from_artifact.txt"
echo "ok: canonical artifact reproduces the golden report"

# ---- Phase B: elastic recovery after losing a worker outright ---------

echo "== elastic consolidation with worker 1's file lost"
"$merge_bin" --elastic --inputs "$work/parts/w0.shard" \
  >"$work/elastic.txt"
grep -q "coverage gaps" "$work/elastic.txt" || {
  echo "FAIL: elastic consolidation did not report gaps:" >&2
  cat "$work/elastic.txt" >&2
  exit 1
}
grep -q "missing tasks 2:4" "$work/elastic.txt" || {
  echo "FAIL: gap report did not name worker 1's range 2:4:" >&2
  cat "$work/elastic.txt" >&2
  exit 1
}
replan=$(grep -o -- '--task-range [0-9]*:[0-9]*' "$work/elastic.txt")
[[ $replan == "--task-range 2:4" ]] || {
  echo "FAIL: re-plan '$replan' does not cover exactly the gap 2:4" >&2
  exit 1
}
echo "ok: gap named and re-plan covers exactly the missing range"

echo "== run the re-planned range and merge the recovered set"
mkdir "$work/parts2"
# shellcheck disable=SC2086  # $replan is two words by construction
"$bin" $replan --shard-out "$work/parts2/replan.shard" --threads 1 \
  >/dev/null
"$merge_bin" --elastic \
  --inputs "$work/parts/w0.shard,$work/parts2/replan.shard" \
  --out "$work/recovered.sopsshard" >"$work/elastic2.txt"
grep -q "coverage complete" "$work/elastic2.txt" || {
  echo "FAIL: recovered set still reports gaps:" >&2
  cat "$work/elastic2.txt" >&2
  exit 1
}
"$bin" --merge "$work/recovered.sopsshard" >"$work/recovered.txt"
cmp "$work/golden.txt" "$work/recovered.txt"
# A gap-free elastic artifact is the canonical merge, byte for byte.
cmp "$work/all.sopsshard" "$work/recovered.sopsshard"
echo "ok: elastic recovery reproduces the golden report and artifact"

echo "PASS: $harness checkpoint kill -9 + elastic recovery"
