#!/usr/bin/env bash
# Records one point of the kernel-performance trajectory: runs the
# old-vs-new step/locality/count microbenches of bench_kernels with
# --benchmark_format=json and distills machine note + items/sec (+ the
# probes_per_step counter) into a stable, diff-friendly JSON file.
#
# Usage: scripts/bench_kernels_snapshot.sh [build-dir] [out-file]
#   build-dir  CMake build tree holding bench/bench_kernels (default: build)
#   out-file   snapshot destination (default: BENCH_kernels.json)
#
#        scripts/bench_kernels_snapshot.sh --compare [build-dir] [baseline]
#   Re-measures and prints a WARN line per benchmark whose items/sec
#   dropped more than 25% below the committed baseline (default:
#   BENCH_kernels.json). Always exits 0 — perf drift warns, never gates
#   CI — except when the benchmark binary itself is missing/broken.
set -euo pipefail
cd "$(dirname "$0")/.."

compare=0
if [[ ${1:-} == --compare ]]; then
  compare=1
  shift
fi
build_dir=${1:-build}
out=${2:-BENCH_kernels.json}

bin=$build_dir/bench/bench_kernels
[[ -x $bin ]] || { echo "error: $bin not built" >&2; exit 1; }

filter='BM_ChainStep(_Reference)?/(400|1600)|BM_PropertyCheck(_Reference)?$|BM_NeighborhoodGather$|BM_NeighborCount$'
raw=$(mktemp "${TMPDIR:-/tmp}/bench_kernels.XXXXXX.json")
trap 'rm -f "$raw"' EXIT

# The harness prints its report banner on stdout, so route the JSON
# through --benchmark_out instead of --benchmark_format=json on stdout.
"$bin" --benchmark_filter="$filter" --benchmark_min_time=0.5 \
  --benchmark_format=json --benchmark_out="$raw" \
  --benchmark_out_format=json > /dev/null

build_type=$(grep -m1 '^CMAKE_BUILD_TYPE' "$build_dir/CMakeCache.txt" 2>/dev/null \
  | cut -d= -f2)

distill() {
  # $1 = raw google-benchmark JSON; emits the snapshot document.
  jq --arg machine "$(uname -srm), $(nproc) cores" \
     --arg build_type "${build_type:-unknown}" '{
    machine: $machine,
    build_type: $build_type,
    benchmarks: [.benchmarks[] | {
      name,
      items_per_second: (.items_per_second // null),
      ns_per_op: .cpu_time,
      probes_per_step: (.probes_per_step // null)
    }]
  }' "$1"
}

if (( compare )); then
  baseline=${2:-BENCH_kernels.json}
  [[ -f $baseline ]] || { echo "note: no baseline $baseline; skipping kernel perf comparison"; exit 0; }
  current=$(mktemp "${TMPDIR:-/tmp}/bench_kernels_cur.XXXXXX.json")
  trap 'rm -f "$raw" "$current"' EXIT
  distill "$raw" > "$current"
  jq -n --slurpfile base "$baseline" --slurpfile cur "$current" '
    [$base[0].benchmarks[] as $b
     | ($cur[0].benchmarks[] | select(.name == $b.name)) as $c
     | select($b.items_per_second != null and $c.items_per_second != null)
     | select($c.items_per_second < 0.75 * $b.items_per_second)
     | "WARN: \($b.name) slowed: \($c.items_per_second | floor) items/s vs baseline \($b.items_per_second | floor)"]
    | .[]' -r
  echo "kernel perf comparison done (warn-only, threshold 25%)"
else
  distill "$raw" > "$out"
  echo "wrote $out"
fi
