#!/usr/bin/env bash
# Records one point of the kernel-performance trajectory: runs the
# old-vs-new step/locality/count microbenches of bench_kernels with
# --benchmark_format=json and distills machine note + items/sec (+ the
# probes_per_step counter) into a stable, diff-friendly JSON file.
#
# Usage: scripts/bench_kernels_snapshot.sh [build-dir] [out-file]
#   build-dir  CMake build tree holding bench/bench_kernels (default: build)
#   out-file   snapshot destination (default: BENCH_kernels.json)
#
#        scripts/bench_kernels_snapshot.sh --compare [--tolerance PCT] \
#            [--counters] [build-dir] [baseline]
#   Re-measures and prints a WARN line per benchmark whose items/sec
#   dropped more than PCT percent (default 25) below the committed
#   baseline (default: BENCH_kernels.json). By default perf drift
#   warns, never gates CI — the script exits 0 unless the benchmark
#   binary itself is missing/broken. Opt-in hard-fail mode: set
#   SOPS_BENCH_STRICT=1 to exit 1 when any benchmark breaches the
#   tolerance (for perf-gated CI lanes).
#
#   --counters additionally checks the band engine's execution-path
#   counters: on the AVX2 tier (CPU reports avx2, SOPS_FORCE_SCALAR
#   unset) the BM_ReplicaBand SIMD-step fraction must stay >= 90% at
#   widths 8 and 16 — a silent fall-back to the scalar path would
#   otherwise masquerade as a mere perf regression. Warn-only by
#   default; SOPS_BENCH_STRICT=1 makes a breach exit 1.
set -euo pipefail
cd "$(dirname "$0")/.."

compare=0
tolerance=25
counters=0
while [[ ${1:-} == --* ]]; do
  case $1 in
    --compare) compare=1; shift ;;
    --tolerance)
      [[ $compare == 1 ]] || { echo "error: --tolerance only applies to --compare" >&2; exit 2; }
      tolerance=${2:?--tolerance needs a percentage}
      shift 2 ;;
    --counters)
      [[ $compare == 1 ]] || { echo "error: --counters only applies to --compare" >&2; exit 2; }
      counters=1; shift ;;
    *) echo "error: unknown flag $1" >&2; exit 2 ;;
  esac
done
build_dir=${1:-build}
out=${2:-BENCH_kernels.json}

bin=$build_dir/bench/bench_kernels
[[ -x $bin ]] || { echo "error: $bin not built" >&2; exit 1; }

filter='BM_ChainStep(_Reference)?/(400|1600)|BM_RunPipeline/(400|1600)/(64|256|1024)|BM_ReplicaBand/(400|1600)/(1|8|16)|BM_PropertyCheck(_Reference)?$|BM_NeighborhoodGather$|BM_NeighborCount$'
raw=$(mktemp "${TMPDIR:-/tmp}/bench_kernels.XXXXXX.json")
trap 'rm -f "$raw"' EXIT

# The harness prints its report banner on stdout, so route the JSON
# through --benchmark_out instead of --benchmark_format=json on stdout.
# Three repetitions with only the aggregates reported: the snapshot
# records each benchmark's median run, so one noisy scheduling quantum
# can't skew a recorded row (or trip a spurious --compare WARN).
"$bin" --benchmark_filter="$filter" --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json --benchmark_out="$raw" \
  --benchmark_out_format=json > /dev/null

build_type=$(grep -m1 '^CMAKE_BUILD_TYPE' "$build_dir/CMakeCache.txt" 2>/dev/null \
  | cut -d= -f2)

distill() {
  # $1 = raw google-benchmark JSON; emits the snapshot document. Only
  # the per-benchmark median aggregate is kept, under the plain name.
  jq --arg machine "$(uname -srm), $(nproc) cores" \
     --arg build_type "${build_type:-unknown}" '{
    machine: $machine,
    build_type: $build_type,
    benchmarks: [.benchmarks[]
      | select(.aggregate_name == "median")
      | {
        name: (.name | sub("_median$"; "")),
        items_per_second: (.items_per_second // null),
        ns_per_op: .cpu_time,
        probes_per_step: (.probes_per_step // null)
      }]
  }' "$1"
}

if (( compare )); then
  baseline=${2:-BENCH_kernels.json}
  [[ -f $baseline ]] || { echo "note: no baseline $baseline; skipping kernel perf comparison"; exit 0; }
  current=$(mktemp "${TMPDIR:-/tmp}/bench_kernels_cur.XXXXXX.json")
  trap 'rm -f "$raw" "$current"' EXIT
  distill "$raw" > "$current"
  warnings=$(jq -n --slurpfile base "$baseline" --slurpfile cur "$current" \
    --argjson tol "$tolerance" '
    [$base[0].benchmarks[] as $b
     | ($cur[0].benchmarks[] | select(.name == $b.name)) as $c
     | select($b.items_per_second != null and $c.items_per_second != null)
     | select($c.items_per_second < (1 - $tol / 100) * $b.items_per_second)
     | "WARN: \($b.name) slowed: \($c.items_per_second | floor) items/s vs baseline \($b.items_per_second | floor)"]
    | .[]' -r)
  # Benchmarks in the new run with no baseline row are additions, not
  # regressions: report them informationally so the operator refreshes
  # the snapshot, but never let them trip SOPS_BENCH_STRICT.
  additions=$(jq -n --slurpfile base "$baseline" --slurpfile cur "$current" '
    ([$base[0].benchmarks[].name]) as $known
    | [$cur[0].benchmarks[]
       | select(.name as $n | $known | index($n) | not)
       | "NEW: \(.name): \(if .items_per_second then (.items_per_second | floor | tostring) + " items/s" else "\(.ns_per_op | floor) ns/op" end) — no baseline row; refresh with scripts/bench_kernels_snapshot.sh"]
    | .[]' -r)
  # Coverage gate: the perf rows only mean what they claim if the band
  # actually ran its SIMD path. The fraction comes from the fresh raw
  # run (median aggregate), never from the baseline.
  coverage=
  if (( counters )); then
    if [[ -n ${SOPS_FORCE_SCALAR:-} ]] \
        || ! grep -qm1 avx2 /proc/cpuinfo 2>/dev/null; then
      echo "counters: non-AVX2 tier (or SOPS_FORCE_SCALAR set); skipping band SIMD-fraction check"
    else
      coverage=$(jq -r '
        [.benchmarks[]
         | select(.aggregate_name == "median")
         | select(.name | test("^BM_ReplicaBand/[0-9]+/(8|16)_median$"))
         | select((.simd_fraction // 0) < 0.90)
         | "WARN: \(.name | sub("_median$"; "")) SIMD-step fraction \((.simd_fraction // 0) * 1000 | floor / 10)% < 90% — band fell back to scalar"]
        | .[]' "$raw")
      [[ -z $coverage ]] || printf '%s\n' "$coverage"
    fi
  fi
  [[ -z $warnings ]] || printf '%s\n' "$warnings"
  [[ -z $additions ]] || printf '%s\n' "$additions"
  if [[ -n ${SOPS_BENCH_STRICT:-} && ${SOPS_BENCH_STRICT:-} != 0 \
        && ( -n $warnings || -n $coverage ) ]]; then
    echo "FAIL: kernel perf regression beyond ${tolerance}% or band SIMD coverage below 90% (SOPS_BENCH_STRICT=1)" >&2
    exit 1
  fi
  echo "kernel perf comparison done ($( [[ -n ${SOPS_BENCH_STRICT:-} && ${SOPS_BENCH_STRICT:-} != 0 ]] && echo strict || echo warn-only ), threshold ${tolerance}%)"
else
  distill "$raw" > "$out"
  echo "wrote $out"
fi
