#!/usr/bin/env bash
# Records one point of the kernel-performance trajectory: runs the
# old-vs-new step/locality/count microbenches of bench_kernels with
# --benchmark_format=json and distills machine note + items/sec (+ the
# probes_per_step counter) into a stable, diff-friendly JSON file.
#
# Usage: scripts/bench_kernels_snapshot.sh [build-dir] [out-file]
#   build-dir  CMake build tree holding bench/bench_kernels (default: build)
#   out-file   snapshot destination (default: BENCH_kernels.json)
#
#        scripts/bench_kernels_snapshot.sh --compare [--tolerance PCT] \
#            [build-dir] [baseline]
#   Re-measures and prints a WARN line per benchmark whose items/sec
#   dropped more than PCT percent (default 25) below the committed
#   baseline (default: BENCH_kernels.json). By default perf drift
#   warns, never gates CI — the script exits 0 unless the benchmark
#   binary itself is missing/broken. Opt-in hard-fail mode: set
#   SOPS_BENCH_STRICT=1 to exit 1 when any benchmark breaches the
#   tolerance (for perf-gated CI lanes).
set -euo pipefail
cd "$(dirname "$0")/.."

compare=0
tolerance=25
if [[ ${1:-} == --compare ]]; then
  compare=1
  shift
fi
if [[ ${1:-} == --tolerance ]]; then
  [[ $compare == 1 ]] || { echo "error: --tolerance only applies to --compare" >&2; exit 2; }
  tolerance=${2:?--tolerance needs a percentage}
  shift 2
fi
build_dir=${1:-build}
out=${2:-BENCH_kernels.json}

bin=$build_dir/bench/bench_kernels
[[ -x $bin ]] || { echo "error: $bin not built" >&2; exit 1; }

filter='BM_ChainStep(_Reference)?/(400|1600)|BM_RunPipeline/(400|1600)/(64|256|1024)|BM_ReplicaBand/(400|1600)/(1|8|16)|BM_PropertyCheck(_Reference)?$|BM_NeighborhoodGather$|BM_NeighborCount$'
raw=$(mktemp "${TMPDIR:-/tmp}/bench_kernels.XXXXXX.json")
trap 'rm -f "$raw"' EXIT

# The harness prints its report banner on stdout, so route the JSON
# through --benchmark_out instead of --benchmark_format=json on stdout.
# Three repetitions with only the aggregates reported: the snapshot
# records each benchmark's median run, so one noisy scheduling quantum
# can't skew a recorded row (or trip a spurious --compare WARN).
"$bin" --benchmark_filter="$filter" --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json --benchmark_out="$raw" \
  --benchmark_out_format=json > /dev/null

build_type=$(grep -m1 '^CMAKE_BUILD_TYPE' "$build_dir/CMakeCache.txt" 2>/dev/null \
  | cut -d= -f2)

distill() {
  # $1 = raw google-benchmark JSON; emits the snapshot document. Only
  # the per-benchmark median aggregate is kept, under the plain name.
  jq --arg machine "$(uname -srm), $(nproc) cores" \
     --arg build_type "${build_type:-unknown}" '{
    machine: $machine,
    build_type: $build_type,
    benchmarks: [.benchmarks[]
      | select(.aggregate_name == "median")
      | {
        name: (.name | sub("_median$"; "")),
        items_per_second: (.items_per_second // null),
        ns_per_op: .cpu_time,
        probes_per_step: (.probes_per_step // null)
      }]
  }' "$1"
}

if (( compare )); then
  baseline=${2:-BENCH_kernels.json}
  [[ -f $baseline ]] || { echo "note: no baseline $baseline; skipping kernel perf comparison"; exit 0; }
  current=$(mktemp "${TMPDIR:-/tmp}/bench_kernels_cur.XXXXXX.json")
  trap 'rm -f "$raw" "$current"' EXIT
  distill "$raw" > "$current"
  warnings=$(jq -n --slurpfile base "$baseline" --slurpfile cur "$current" \
    --argjson tol "$tolerance" '
    [$base[0].benchmarks[] as $b
     | ($cur[0].benchmarks[] | select(.name == $b.name)) as $c
     | select($b.items_per_second != null and $c.items_per_second != null)
     | select($c.items_per_second < (1 - $tol / 100) * $b.items_per_second)
     | "WARN: \($b.name) slowed: \($c.items_per_second | floor) items/s vs baseline \($b.items_per_second | floor)"]
    | .[]' -r)
  # Benchmarks in the new run with no baseline row are additions, not
  # regressions: report them informationally so the operator refreshes
  # the snapshot, but never let them trip SOPS_BENCH_STRICT.
  additions=$(jq -n --slurpfile base "$baseline" --slurpfile cur "$current" '
    ([$base[0].benchmarks[].name]) as $known
    | [$cur[0].benchmarks[]
       | select(.name as $n | $known | index($n) | not)
       | "NEW: \(.name): \(if .items_per_second then (.items_per_second | floor | tostring) + " items/s" else "\(.ns_per_op | floor) ns/op" end) — no baseline row; refresh with scripts/bench_kernels_snapshot.sh"]
    | .[]' -r)
  [[ -z $warnings ]] || printf '%s\n' "$warnings"
  [[ -z $additions ]] || printf '%s\n' "$additions"
  if [[ -n ${SOPS_BENCH_STRICT:-} && ${SOPS_BENCH_STRICT:-} != 0 && -n $warnings ]]; then
    echo "FAIL: kernel perf regression beyond ${tolerance}% (SOPS_BENCH_STRICT=1)" >&2
    exit 1
  fi
  echo "kernel perf comparison done ($( [[ -n ${SOPS_BENCH_STRICT:-} && ${SOPS_BENCH_STRICT:-} != 0 ]] && echo strict || echo warn-only ), threshold ${tolerance}%)"
else
  distill "$raw" > "$out"
  echo "wrote $out"
fi
