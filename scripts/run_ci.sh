#!/usr/bin/env bash
# Single-command CI: configure, build, run the full test suite, then
# smoke-check the sharded-harness round-trip (worker → merge →
# byte-identical report) for two grid harnesses — one chain-backed
# (bench_thm13_compression) and one exact/aux-backed (bench_mixing_gap,
# retrofitted onto the engine by the harness framework). The model
# registry gets its own gates: the `ctest -L model` tier, an alignment
# phase-diagram report cmp'd against the committed golden under
# tests/golden/, and a second kill -9 + elastic-recovery cycle run
# against bench_alignment_phase_diagram to prove the checkpoint path is
# model-generic.
#
# Usage: scripts/run_ci.sh [build-dir]
#   build-dir  CMake build tree to create/reuse (default: build)
#
# Environment:
#   CMAKE_BUILD_TYPE  build type (default: Release)
#   JOBS              parallel build/test jobs (default: nproc)
#   SOPS_BENCH_STRICT kernel-perf comparison hard-fails (exit 1) on a
#                     regression beyond the tolerance instead of the
#                     default warn-only behavior (see
#                     bench_kernels_snapshot.sh --compare --tolerance)
#   SOPS_CI_TSAN      also configure a -DSOPS_SANITIZE=thread tree in
#                     <build-dir>-tsan and run the race-check tiers
#                     there: ctest -L 'core|engine|shard|checkpoint|…'
#                     (the core tier carries the step-pipeline and
#                     neighborhood equivalence tests; the checkpoint
#                     tier races snapshot writers across the pool)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=${1:-build}
build_type=${CMAKE_BUILD_TYPE:-Release}
jobs=${JOBS:-$(nproc)}

echo "== configure ($build_dir, $build_type)"
cmake -S . -B "$build_dir" -DCMAKE_BUILD_TYPE="$build_type"

echo "== build (-j$jobs)"
cmake --build "$build_dir" -j "$jobs"

echo "== ctest"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "== ctest model tier (registry + alignment seam)"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" -L model

echo "== replica-band + step-pipeline scalar fallback (SOPS_FORCE_SCALAR=1)"
# The default ctest pass above exercises the AVX2 path (on hardware that
# has it); this one pins the scalar fallback to the same byte-identity
# contract. The binary runs directly because the ctest registrations
# were discovered without the env override.
SOPS_FORCE_SCALAR=1 "$build_dir"/tests/replica_band_test \
  --gtest_brief=1
SOPS_FORCE_SCALAR=1 "$build_dir"/tests/step_pipeline_test \
  --gtest_brief=1
SOPS_FORCE_SCALAR=1 "$build_dir"/tests/engine_test \
  --gtest_brief=1 --gtest_filter='Ensemble.Banded*'
echo "ok: band and pipeline equivalence tests pass with SIMD disabled"

echo "== alignment smoke (report vs committed golden)"
"$build_dir"/bench/bench_alignment_phase_diagram --threads 1 \
  >/tmp/sops_alignment_smoke.$$.txt
cmp /tmp/sops_alignment_smoke.$$.txt tests/golden/bench_alignment_phase_diagram.txt
rm -f /tmp/sops_alignment_smoke.$$.txt
echo "ok: alignment report byte-identical to tests/golden"

echo "== shard round-trip smoke (bench_thm13_compression)"
scripts/check_shard_roundtrip.sh "$build_dir" bench_thm13_compression 2

echo "== shard round-trip smoke (bench_mixing_gap)"
scripts/check_shard_roundtrip.sh "$build_dir" bench_mixing_gap 3

echo "== service smoke (sweep server + load client)"
scripts/check_service_smoke.sh "$build_dir" bench_fig3_phase_diagram

echo "== checkpoint kill -9 + elastic recovery (bench_thm13_compression)"
scripts/check_checkpoint_kill9.sh "$build_dir" bench_thm13_compression

echo "== checkpoint kill -9 + elastic recovery (bench_alignment_phase_diagram)"
scripts/check_checkpoint_kill9.sh "$build_dir" bench_alignment_phase_diagram

echo "== kernel perf vs recorded snapshot ($(
  [[ -n ${SOPS_BENCH_STRICT:-} && ${SOPS_BENCH_STRICT:-} != 0 ]] \
    && echo "strict: SOPS_BENCH_STRICT=1" || echo warn-only))"
scripts/bench_kernels_snapshot.sh --compare --counters "$build_dir" \
  BENCH_kernels.json

if [[ -n ${SOPS_CI_TSAN:-} && ${SOPS_CI_TSAN:-} != 0 ]]; then
  echo "== TSan tiers (core|engine|shard|checkpoint|harness|service under ${build_dir}-tsan)"
  cmake -S . -B "${build_dir}-tsan" -DSOPS_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${build_dir}-tsan" -j "$jobs"
  ctest --test-dir "${build_dir}-tsan" --output-on-failure -j "$jobs" \
    -L 'core|engine|shard|checkpoint|harness|service'
fi

echo "PASS: CI green"
