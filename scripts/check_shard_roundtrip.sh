#!/usr/bin/env bash
# Shard round-trip smoke check: run a harness unsharded, then split the
# same job into N shards (workers at varying --threads), merge, and
# require the merged report to be byte-identical to the unsharded one.
# Also exercises the canonical merged artifact via sops_shard_merge and
# the refusal path for an incomplete shard set.
#
# Usage: scripts/check_shard_roundtrip.sh [build-dir] [harness] [shards]
#   build-dir  CMake build tree holding bench/ binaries (default: build)
#   harness    sharded harness name (default: bench_fig3_phase_diagram)
#   shards     shard count (default: 3)
#
# Works on a real multi-host run too: run each worker command on its own
# host, copy the .shard files back, and merge on the coordinator.
set -euo pipefail

build_dir=${1:-build}
harness=${2:-bench_fig3_phase_diagram}
shards=${3:-3}

bin="$build_dir/bench/$harness"
merge_bin="$build_dir/bench/sops_shard_merge"
[[ -x $bin ]] || { echo "error: $bin not built" >&2; exit 1; }
[[ -x $merge_bin ]] || { echo "error: $merge_bin not built" >&2; exit 1; }

work=$(mktemp -d "${TMPDIR:-/tmp}/shard_roundtrip.XXXXXX")
trap 'rm -rf "$work"' EXIT

echo "== unsharded reference ($harness)"
"$bin" >"$work/reference.txt"

inputs=()
for ((k = 0; k < shards; ++k)); do
  threads=$((k % 3 + 1))  # workers deliberately disagree on --threads
  echo "== worker $k/$shards (--threads $threads)"
  "$bin" --shard "$k/$shards" --shard-out "$work/part$k.shard" \
    --threads "$threads"
  inputs+=("$work/part$k.shard")
done

echo "== merge via harness --merge"
merge_list=$(IFS=,; echo "${inputs[*]}")
"$bin" --merge "$merge_list" >"$work/merged.txt"

if ! diff -u "$work/reference.txt" "$work/merged.txt"; then
  echo "FAIL: merged report differs from unsharded run" >&2
  exit 1
fi
echo "ok: merged report byte-identical to unsharded run"

echo "== canonical merged artifact via sops_shard_merge"
"$merge_bin" --inputs "$merge_list" --out "$work/all.shard"
# Merging the canonical artifact alone must reproduce the same report.
"$bin" --merge "$work/all.shard" >"$work/from_artifact.txt"
cmp "$work/reference.txt" "$work/from_artifact.txt"
echo "ok: canonical artifact reproduces the report"

echo "== refusal: incomplete shard set must be rejected"
if "$merge_bin" --inputs "$work/part0.shard" >/dev/null 2>"$work/err.txt"; then
  echo "FAIL: merge accepted an incomplete shard set" >&2
  exit 1
fi
grep -q "missing task indices" "$work/err.txt" || {
  echo "FAIL: refusal did not list missing task indices:" >&2
  cat "$work/err.txt" >&2
  exit 1
}
echo "ok: incomplete set refused with explicit missing indices"

echo "PASS: $harness shard round-trip ($shards shards)"
