#!/usr/bin/env bash
# Shard round-trip smoke check: run a harness unsharded, then split the
# same job into N shards (workers at varying --threads), merge, and
# require the merged report to be byte-identical to the unsharded one.
# Also exercises the canonical merged artifact via sops_shard_merge (both
# the --inputs list and the --merge-dir glob form), the refusal path for
# an incomplete shard set, and the exit-code contract: usage errors exit
# 2, data-validation failures exit 1.
#
# Usage: scripts/check_shard_roundtrip.sh [build-dir] [harness] [shards]
#   build-dir  CMake build tree holding bench/ binaries (default: build)
#   harness    sharded harness name (default: bench_fig3_phase_diagram)
#   shards     shard count (default: 3)
#
# Works on a real multi-host run too: run each worker command on its own
# host, copy the .shard files back, and merge on the coordinator.
set -euo pipefail

build_dir=${1:-build}
harness=${2:-bench_fig3_phase_diagram}
shards=${3:-3}

bin="$build_dir/bench/$harness"
merge_bin="$build_dir/bench/sops_shard_merge"
[[ -x $bin ]] || { echo "error: $bin not built" >&2; exit 1; }
[[ -x $merge_bin ]] || { echo "error: $merge_bin not built" >&2; exit 1; }

work=$(mktemp -d "${TMPDIR:-/tmp}/shard_roundtrip.XXXXXX")
trap 'rm -rf "$work"' EXIT
mkdir "$work/parts"

# Runs "$@" expecting exit code $1, with stderr kept in $work/err.txt.
expect_rc() {
  local want=$1
  shift
  local rc=0
  "$@" >/dev/null 2>"$work/err.txt" || rc=$?
  if [[ $rc -ne $want ]]; then
    echo "FAIL: '$*' exited $rc, expected $want" >&2
    cat "$work/err.txt" >&2
    exit 1
  fi
}

echo "== unsharded reference ($harness)"
"$bin" >"$work/reference.txt"

inputs=()
for ((k = 0; k < shards; ++k)); do
  threads=$((k % 3 + 1))  # workers deliberately disagree on --threads
  echo "== worker $k/$shards (--threads $threads)"
  "$bin" --shard "$k/$shards" --shard-out "$work/parts/part$k.shard" \
    --threads "$threads"
  inputs+=("$work/parts/part$k.shard")
done

echo "== merge via harness --merge"
merge_list=$(IFS=,; echo "${inputs[*]}")
"$bin" --merge "$merge_list" >"$work/merged.txt"

if ! diff -u "$work/reference.txt" "$work/merged.txt"; then
  echo "FAIL: merged report differs from unsharded run" >&2
  exit 1
fi
echo "ok: merged report byte-identical to unsharded run"

echo "== merge via harness --merge-dir"
"$bin" --merge-dir "$work/parts" >"$work/merged_dir.txt"
cmp "$work/reference.txt" "$work/merged_dir.txt"
echo "ok: --merge-dir report byte-identical to unsharded run"

echo "== canonical merged artifact via sops_shard_merge"
"$merge_bin" --inputs "$merge_list" --out "$work/all.shard"
# Merging the canonical artifact alone must reproduce the same report.
"$bin" --merge "$work/all.shard" >"$work/from_artifact.txt"
cmp "$work/reference.txt" "$work/from_artifact.txt"
# The --merge-dir glob form must produce the identical canonical bytes.
"$merge_bin" --merge-dir "$work/parts" --out "$work/all_dir.shard"
cmp "$work/all.shard" "$work/all_dir.shard"
echo "ok: canonical artifact reproduces the report (list and dir forms)"

echo "== refusal: incomplete shard set must be rejected (exit 1)"
expect_rc 1 "$merge_bin" --inputs "$work/parts/part0.shard"
grep -q "missing task indices" "$work/err.txt" || {
  echo "FAIL: refusal did not list missing task indices:" >&2
  cat "$work/err.txt" >&2
  exit 1
}
if (( shards > 1 )); then
  # The worker manifest lets the merge name the absent file itself.
  grep -q "missing shard file" "$work/err.txt" || {
    echo "FAIL: refusal did not name the missing shard file:" >&2
    cat "$work/err.txt" >&2
    exit 1
  }
fi
echo "ok: incomplete set refused with explicit missing indices and file"

echo "== usage errors must exit 2"
expect_rc 2 "$bin" --no-such-flag
expect_rc 2 "$bin" --shard "0/$shards"             # --shard without --shard-out
expect_rc 2 "$merge_bin"                           # neither input mode
expect_rc 2 "$merge_bin" --inputs a --merge-dir b  # both input modes
echo "ok: usage errors exit 2, data errors exit 1"

echo "PASS: $harness shard round-trip ($shards shards)"
